//! Hierarchical spans with monotonic timers.
//!
//! A span is opened with the [`span!`](crate::span!) macro and closed when
//! the returned [`SpanGuard`] drops; the close emits one `span` event
//! carrying the name, nesting depth, start timestamp, and duration. Depth is
//! tracked per thread so concurrent workers do not interleave their nesting.

use std::cell::Cell;
use std::sync::Arc;

use crate::{Collector, FieldValue};

thread_local! {
    static DEPTH: Cell<u64> = const { Cell::new(0) };
}

/// This thread's current span nesting depth.
pub(crate) fn current_depth() -> u64 {
    DEPTH.with(Cell::get)
}

/// Zeroes this thread's span depth until dropped, so telemetry captured
/// inline on a coordinating thread nests identically to telemetry captured
/// on a fresh worker thread (which starts at depth 0).
pub(crate) struct DepthResetGuard {
    saved: u64,
}

impl DepthResetGuard {
    pub(crate) fn new() -> Self {
        DepthResetGuard {
            saved: DEPTH.with(|d| d.replace(0)),
        }
    }
}

impl Drop for DepthResetGuard {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(self.saved));
    }
}

/// RAII guard for an open span. Emits the `span` event on drop. A guard
/// created while no collector is installed is a no-op.
#[must_use = "a span closes (and is recorded) when its guard drops"]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

struct SpanInner {
    collector: Arc<Collector>,
    name: &'static str,
    depth: u64,
    /// Start timestamp (sink backend) or capture token (capture backend);
    /// opaque here, interpreted by [`Collector::span_close`].
    handle: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

impl SpanGuard {
    /// Open a span against the currently installed collector (if any).
    /// Prefer the [`span!`](crate::span!) macro.
    pub fn enter(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> SpanGuard {
        match crate::current() {
            Some(collector) => {
                let depth = DEPTH.with(|d| {
                    let v = d.get();
                    d.set(v + 1);
                    v
                });
                let handle = collector.span_open();
                SpanGuard {
                    inner: Some(SpanInner {
                        collector,
                        name,
                        depth,
                        handle,
                        fields,
                    }),
                }
            }
            None => SpanGuard { inner: None },
        }
    }

    /// Re-open a span whose start was already recorded, without consuming
    /// a clock tick: `handle` is the start timestamp (sink backend) the
    /// original [`SpanGuard::enter`] obtained, as reported by
    /// [`SpanGuard::handle`]. Checkpoint resume uses this so the eventual
    /// close event carries the *original* start and the true total
    /// duration, byte-identical to an uninterrupted run.
    pub fn reenter(
        name: &'static str,
        handle: u64,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> SpanGuard {
        match crate::current() {
            Some(collector) => {
                let depth = DEPTH.with(|d| {
                    let v = d.get();
                    d.set(v + 1);
                    v
                });
                SpanGuard {
                    inner: Some(SpanInner {
                        collector,
                        name,
                        depth,
                        handle,
                        fields,
                    }),
                }
            }
            None => SpanGuard { inner: None },
        }
    }

    /// The span's open handle — the start timestamp for sink-backed
    /// collectors, or the capture token while capturing. `None` when no
    /// collector was installed at entry. Checkpoints store this so
    /// [`SpanGuard::reenter`] can resume the span.
    pub fn handle(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.handle)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            inner
                .collector
                .span_close(inner.handle, inner.name, inner.depth, &inner.fields);
        }
    }
}
