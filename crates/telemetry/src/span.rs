//! Hierarchical spans with monotonic timers.
//!
//! A span is opened with the [`span!`](crate::span!) macro and closed when
//! the returned [`SpanGuard`] drops; the close emits one `span` event
//! carrying the name, nesting depth, start timestamp, and duration. Depth is
//! tracked per thread so concurrent workers do not interleave their nesting.

use std::cell::Cell;
use std::sync::Arc;

use crate::{Collector, FieldValue};

thread_local! {
    static DEPTH: Cell<u64> = const { Cell::new(0) };
}

/// RAII guard for an open span. Emits the `span` event on drop. A guard
/// created while no collector is installed is a no-op.
#[must_use = "a span closes (and is recorded) when its guard drops"]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

struct SpanInner {
    collector: Arc<Collector>,
    name: &'static str,
    depth: u64,
    start: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

impl SpanGuard {
    /// Open a span against the currently installed collector (if any).
    /// Prefer the [`span!`](crate::span!) macro.
    pub fn enter(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> SpanGuard {
        match crate::current() {
            Some(collector) => {
                let depth = DEPTH.with(|d| {
                    let v = d.get();
                    d.set(v + 1);
                    v
                });
                let start = collector.now();
                SpanGuard {
                    inner: Some(SpanInner {
                        collector,
                        name,
                        depth,
                        start,
                        fields,
                    }),
                }
            }
            None => SpanGuard { inner: None },
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            let end = inner.collector.now();
            inner
                .collector
                .emit_span(inner.name, inner.depth, inner.start, end, &inner.fields);
        }
    }
}
