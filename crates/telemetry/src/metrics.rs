//! A registry of named counters, gauges, and log-linear histograms.
//!
//! Metrics are addressed by static name and cheap to update from hot loops
//! (one relaxed atomic op). A [`Registry`] snapshot renders to the JSONL
//! sink as a single `metrics` event; `DseStats`-style public structs read
//! their values back from the same counters.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Obj;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (all ops still work).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Log-linear histogram layout: exact buckets below 2^LINEAR_BITS, then
/// `SUB` sub-buckets per power of two (relative error <= 1/SUB).
const LINEAR_BITS: u32 = 5; // exact 0..31
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS; // 16 sub-buckets per octave
const LINEAR_BUCKETS: usize = 1 << LINEAR_BITS; // 32
const OCTAVES: usize = (64 - LINEAR_BITS) as usize; // 59 octaves cover u64
const BUCKETS: usize = LINEAR_BUCKETS + OCTAVES * SUB as usize;

#[derive(Debug)]
struct HistInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A concurrent log-linear histogram of `u64` samples with percentile
/// readout (`p50`/`p90`/`p99` within ~6% relative error above 32).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistInner {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

/// Bucket index of a value.
fn index_of(v: u64) -> usize {
    if v < LINEAR_BUCKETS as u64 {
        return v as usize;
    }
    let h = 63 - v.leading_zeros(); // highest set bit, >= LINEAR_BITS
    let octave = (h - LINEAR_BITS) as usize;
    let within = ((v >> (h - SUB_BITS)) & (SUB - 1)) as usize;
    LINEAR_BUCKETS + octave * SUB as usize + within
}

/// Lower bound of a bucket (the value reported for percentiles in it).
fn value_of(idx: usize) -> u64 {
    if idx < LINEAR_BUCKETS {
        return idx as u64;
    }
    let rel = idx - LINEAR_BUCKETS;
    let octave = (rel / SUB as usize) as u32;
    let within = (rel % SUB as usize) as u64;
    let base = 1u64 << (octave + LINEAR_BITS);
    base + within * (base >> SUB_BITS)
}

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let i = index_of(v);
        self.0.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Mean of samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Fold another histogram's samples into this one (bucket-wise add).
    fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.0.buckets.iter().zip(other.0.buckets.iter()) {
            let v = src.load(Ordering::Relaxed);
            if v != 0 {
                dst.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.0.count.fetch_add(other.count(), Ordering::Relaxed);
        self.0.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.0.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Nonzero `(bucket index, count)` pairs in ascending bucket order —
    /// the raw parts a [`MetricSnapshot::Histogram`] persists.
    fn nonzero_buckets(&self) -> Vec<(u32, u64)> {
        self.0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let v = b.load(Ordering::Relaxed);
                (v != 0).then_some((i as u32, v))
            })
            .collect()
    }

    /// Fold raw parts back in: equivalent to [`Histogram::merge_from`] with
    /// a histogram holding exactly these buckets, so `export` → `import`
    /// reproduces merges bit-exactly. Out-of-range bucket indices are
    /// ignored (they cannot arise from [`Histogram::nonzero_buckets`]).
    fn add_parts(&self, buckets: &[(u32, u64)], count: u64, sum: u64, max: u64) {
        for &(i, v) in buckets {
            if let Some(b) = self.0.buckets.get(i as usize) {
                b.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.0.count.fetch_add(count, Ordering::Relaxed);
        self.0.sum.fetch_add(sum, Ordering::Relaxed);
        self.0.max.fetch_max(max, Ordering::Relaxed);
    }

    /// Approximate percentile (`p` in 0..=100): the lower bound of the
    /// bucket holding the p-th sample. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        // Rank of the target sample, 1-based, clamped into [1, n].
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0).min(n as f64) as u64;
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return value_of(i);
            }
        }
        self.max()
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The kind of a registered metric, as reported by
/// [`Registry::metric_names`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotonic [`Counter`].
    Counter,
    /// A last-value-wins [`Gauge`].
    Gauge,
    /// A log-linear [`Histogram`].
    Histogram,
}

/// A point-in-time value of one metric, detached from any registry — the
/// serializable unit behind [`Registry::export`]/[`Registry::import`].
/// Everything is lossless: counter/gauge values verbatim, histograms as
/// raw bucket counts, so an exported-then-imported registry merges
/// bit-identically to merging the original.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value (persist via `to_bits` to keep -0.0/NaN payloads).
    Gauge(f64),
    /// Histogram raw parts.
    Histogram {
        /// Nonzero `(bucket index, count)` pairs, ascending.
        buckets: Vec<(u32, u64)>,
        /// Total sample count.
        count: u64,
        /// Sum of samples.
        sum: u64,
        /// Largest sample.
        max: u64,
    },
}

/// A named-metric registry. Cloning is cheap (shared storage).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<&'static str, Metric>>>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name)
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with another type"),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name)
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with another type"),
        }
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name)
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with another type"),
        }
    }

    /// Render every metric into a JSON object string (counters as integers,
    /// gauges as floats, histograms as `{count,sum,max,p50,p90,p99}`).
    pub fn snapshot_json(&self) -> String {
        let m = self.metrics.lock().unwrap();
        let mut obj = Obj::new();
        for (name, metric) in m.iter() {
            obj = match metric {
                Metric::Counter(c) => obj.u64(name, c.get()),
                Metric::Gauge(g) => obj.f64(name, g.get()),
                Metric::Histogram(h) => obj.raw(
                    name,
                    &Obj::new()
                        .u64("count", h.count())
                        .u64("sum", h.sum())
                        .u64("max", h.max())
                        .u64("p50", h.percentile(50.0))
                        .u64("p90", h.percentile(90.0))
                        .u64("p99", h.percentile(99.0))
                        .finish(),
                ),
            };
        }
        obj.finish()
    }

    /// Fold every metric of `other` into this registry by name: counters
    /// add, histograms merge bucket-wise, gauges take `other`'s value.
    /// Used to apply a captured evaluation's metric deltas to the run
    /// registry — both when the evaluation just ran and when a cache hit
    /// re-applies a stored delta, so hits and misses are indistinguishable.
    ///
    /// # Panics
    ///
    /// Panics if a name is registered with different metric types in the
    /// two registries (same invariant as the accessors).
    pub fn merge_from(&self, other: &Registry) {
        if Arc::ptr_eq(&self.metrics, &other.metrics) {
            return;
        }
        let src = other.metrics.lock().unwrap();
        for (name, metric) in src.iter() {
            match metric {
                Metric::Counter(c) => {
                    let v = c.get();
                    if v != 0 {
                        self.counter(name).add(v);
                    }
                }
                Metric::Gauge(g) => self.gauge(name).set(g.get()),
                Metric::Histogram(h) => {
                    if h.count() != 0 {
                        self.histogram(name).merge_from(h);
                    }
                }
            }
        }
    }

    /// Every registered metric name with its kind, sorted by name. The
    /// metric-name audit uses this to check runtime emissions against the
    /// documented lists in [`crate::names`].
    pub fn metric_names(&self) -> Vec<(&'static str, MetricKind)> {
        let m = self.metrics.lock().unwrap();
        m.iter()
            .map(|(name, metric)| {
                let kind = match metric {
                    Metric::Counter(_) => MetricKind::Counter,
                    Metric::Gauge(_) => MetricKind::Gauge,
                    Metric::Histogram(_) => MetricKind::Histogram,
                };
                (*name, kind)
            })
            .collect()
    }

    /// Current value of a counter by name (0 when absent or not a counter).
    pub fn counter_value(&self, name: &str) -> u64 {
        let m = self.metrics.lock().unwrap();
        match m.get(name) {
            Some(Metric::Counter(c)) => c.get(),
            _ => 0,
        }
    }

    /// Snapshot every metric into a portable value, sorted by name.
    pub fn export(&self) -> Vec<(&'static str, MetricSnapshot)> {
        let m = self.metrics.lock().unwrap();
        m.iter()
            .map(|(name, metric)| {
                let snap = match metric {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                    Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                    Metric::Histogram(h) => MetricSnapshot::Histogram {
                        buckets: h.nonzero_buckets(),
                        count: h.count(),
                        sum: h.sum(),
                        max: h.max(),
                    },
                };
                (*name, snap)
            })
            .collect()
    }

    /// Fold one exported metric back in with [`Registry::merge_from`]
    /// semantics: counters add, gauges take the value, histograms merge
    /// bucket-wise. The name must be `'static` — loaders re-intern through
    /// the documented lists in [`crate::names`] instead of leaking.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different metric kind.
    pub fn import(&self, name: &'static str, snap: &MetricSnapshot) {
        match snap {
            MetricSnapshot::Counter(v) => {
                if *v != 0 {
                    self.counter(name).add(*v);
                }
            }
            MetricSnapshot::Gauge(v) => self.gauge(name).set(*v),
            MetricSnapshot::Histogram {
                buckets,
                count,
                sum,
                max,
            } => {
                if *count != 0 || !buckets.is_empty() {
                    self.histogram(name).add_parts(buckets, *count, *sum, *max);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_consistent() {
        for v in [0u64, 1, 31, 32, 33, 100, 1_000, 65_535, u64::MAX / 2] {
            let idx = index_of(v);
            let lo = value_of(idx);
            assert!(lo <= v, "lower bound {lo} > {v}");
            // next bucket starts above v
            if idx + 1 < BUCKETS {
                assert!(value_of(idx + 1) > v, "value {v} not below next bucket");
            }
        }
    }

    #[test]
    fn exact_percentiles_below_linear_cutoff() {
        let h = Histogram::default();
        for v in 0..=20u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), 10);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(100.0), 20);
    }

    #[test]
    fn log_linear_percentiles_within_bucket_error() {
        let h = Histogram::default();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (p, expect) in [(50.0, 5_000u64), (90.0, 9_000), (99.0, 9_900)] {
            let got = h.percentile(p) as f64;
            let rel = (got - expect as f64).abs() / expect as f64;
            assert!(rel < 0.07, "p{p}: got {got}, want ~{expect} (rel {rel})");
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.max(), 10_000);
        assert!((h.mean() - 5_000.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn skewed_distribution_p99() {
        let h = Histogram::default();
        for _ in 0..990 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        assert_eq!(h.percentile(50.0), 10);
        let p99 = h.percentile(99.0);
        assert!(p99 == 10, "p99 {p99}"); // 990th of 1000 samples is still 10
        let p999 = h.percentile(99.9);
        assert!(p999 >= 93_750, "p99.9 {p999}");
    }

    #[test]
    fn registry_shares_by_name() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("a").add(2);
        assert_eq!(r.counter_value("a"), 3);
        r.gauge("g").set(1.5);
        assert_eq!(r.gauge("g").get(), 1.5);
        let snap = r.snapshot_json();
        assert!(snap.contains("\"a\":3"));
        assert!(snap.contains("\"g\":1.5"));
    }

    #[test]
    #[should_panic(expected = "another type")]
    fn type_clash_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn merge_from_folds_all_metric_kinds() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("c").add(2);
        b.counter("c").add(3);
        b.counter("only_b").inc();
        b.gauge("g").set(4.5);
        b.histogram("h").record(7);
        b.histogram("h").record(100);
        a.histogram("h").record(1);
        a.merge_from(&b);
        assert_eq!(a.counter_value("c"), 5);
        assert_eq!(a.counter_value("only_b"), 1);
        assert_eq!(a.gauge("g").get(), 4.5);
        let h = a.histogram("h");
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 108);
        assert_eq!(h.max(), 100);
        // merging twice adds again (deltas are applied per call)
        a.merge_from(&b);
        assert_eq!(a.counter_value("c"), 8);
        // self-merge is a no-op, not a deadlock
        let a2 = a.clone();
        a.merge_from(&a2);
        assert_eq!(a.counter_value("c"), 8);
    }

    #[test]
    fn percentile_lands_exactly_on_bucket_boundaries() {
        // One sample on each side of the linear/log boundary and on octave
        // boundaries: the reported percentile must be the bucket's own
        // lower bound, which for boundary values is the value itself.
        for v in [
            31u64, // last exact linear bucket
            32,    // first log-linear bucket
            64,    // octave boundary
            96,    // sub-bucket boundary inside the 64..128 octave
            1 << 20,
        ] {
            let h = Histogram::default();
            h.record(v);
            assert_eq!(h.percentile(0.0), v, "p0 of single sample {v}");
            assert_eq!(h.percentile(50.0), v, "p50 of single sample {v}");
            assert_eq!(h.percentile(100.0), v, "p100 of single sample {v}");
            assert_eq!(value_of(index_of(v)), v, "{v} is a bucket lower bound");
        }
        // Two samples in adjacent buckets: p50 is the first, p100 the second.
        let h = Histogram::default();
        h.record(31);
        h.record(32);
        assert_eq!(h.percentile(50.0), 31);
        assert_eq!(h.percentile(100.0), 32);
    }

    #[test]
    fn zero_samples_everywhere() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        for p in [0.0, 50.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), 0);
        }
        // Merging an empty histogram changes nothing.
        let other = Histogram::default();
        other.record(5);
        other.merge_from(&h);
        assert_eq!(other.count(), 1);
        assert_eq!(other.percentile(100.0), 5);
    }

    #[test]
    fn u64_max_sample_is_representable() {
        let h = Histogram::default();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        // The top bucket's lower bound is still a sane (huge) value and the
        // index stays in range.
        let idx = index_of(u64::MAX);
        assert!(idx < BUCKETS, "index {idx} out of range");
        let p100 = h.percentile(100.0);
        assert!(p100 >= u64::MAX / 2, "p100 {p100} collapsed");
        // A second tiny sample keeps both ends readable.
        h.record(1);
        assert_eq!(h.percentile(0.0), 1);
        assert!(h.percentile(100.0) >= u64::MAX / 2);
    }

    #[test]
    fn export_import_round_trip_equals_merge_from() {
        let src = Registry::new();
        src.counter("c").add(7);
        src.gauge("g").set(-2.25);
        for v in [1u64, 31, 32, 100_000, u64::MAX / 3] {
            src.histogram("h").record(v);
        }
        // Reference: merge the live registry.
        let direct = Registry::new();
        direct.merge_from(&src);
        // Round trip: export, import into a fresh registry.
        let via_export = Registry::new();
        for (name, snap) in src.export() {
            via_export.import(name, &snap);
        }
        assert_eq!(via_export.snapshot_json(), direct.snapshot_json());
        let h_direct = direct.histogram("h");
        let h_rt = via_export.histogram("h");
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h_rt.percentile(p), h_direct.percentile(p));
        }
        // Importing twice applies the delta twice, like merge_from.
        for (name, snap) in src.export() {
            via_export.import(name, &snap);
        }
        assert_eq!(via_export.counter_value("c"), 14);
        assert_eq!(via_export.histogram("h").count(), 10);
    }

    #[test]
    fn merge_of_snapshots_equals_direct_recording() {
        // Recording a stream into one histogram must equal splitting the
        // stream across shards and merging — bucket-wise, not just in
        // count/sum/max.
        let direct = Histogram::default();
        let shards = [
            Histogram::default(),
            Histogram::default(),
            Histogram::default(),
        ];
        let mut v: u64 = 7;
        for i in 0..1_000u64 {
            v = v
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let sample = v >> (v % 50); // spread across many octaves
            direct.record(sample);
            shards[(i % 3) as usize].record(sample);
        }
        let merged = Histogram::default();
        for s in &shards {
            merged.merge_from(s);
        }
        assert_eq!(merged.count(), direct.count());
        assert_eq!(merged.sum(), direct.sum());
        assert_eq!(merged.max(), direct.max());
        for p in [0.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(
                merged.percentile(p),
                direct.percentile(p),
                "p{p} differs after merge"
            );
        }
    }
}
