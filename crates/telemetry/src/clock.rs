//! Wall-clock vs. deterministic logical time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// How timestamps are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Microseconds since collector creation (`Instant`-based, monotonic).
    Wall,
    /// A logical event counter: traces are byte-stable across runs with the
    /// same seed because no real time ever enters the stream.
    Deterministic,
}

/// A timestamp source.
#[derive(Debug)]
pub struct Clock {
    mode: ClockMode,
    origin: Instant,
    ticks: AtomicU64,
}

impl Clock {
    /// Create a clock in the given mode.
    pub fn new(mode: ClockMode) -> Self {
        Clock {
            mode,
            origin: Instant::now(),
            ticks: AtomicU64::new(0),
        }
    }

    /// The clock's mode.
    pub fn mode(&self) -> ClockMode {
        self.mode
    }

    /// Current timestamp. Wall mode: microseconds since the collector was
    /// created. Deterministic mode: the next logical tick (each call
    /// advances time by one, so distinct events get distinct, ordered
    /// timestamps).
    pub fn now(&self) -> u64 {
        match self.mode {
            ClockMode::Wall => self.origin.elapsed().as_micros() as u64,
            ClockMode::Deterministic => self.ticks.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The next tick [`Clock::now`] would return in deterministic mode,
    /// without consuming it (wall mode: current elapsed micros).
    pub fn peek(&self) -> u64 {
        match self.mode {
            ClockMode::Wall => self.origin.elapsed().as_micros() as u64,
            ClockMode::Deterministic => self.ticks.load(Ordering::Relaxed),
        }
    }

    /// Jump the deterministic tick counter to `t` (no-op in wall mode,
    /// where time cannot be restored). Used by checkpoint resume to
    /// continue a trace's logical timeline exactly where it stopped.
    pub fn restore(&self, t: u64) {
        if self.mode == ClockMode::Deterministic {
            self.ticks.store(t, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_ticks_monotone_from_zero() {
        let c = Clock::new(ClockMode::Deterministic);
        assert_eq!(c.now(), 0);
        assert_eq!(c.now(), 1);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn wall_is_monotone() {
        let c = Clock::new(ClockMode::Wall);
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
