//! Phase-level wall-time attribution for DSE runs.
//!
//! A [`Profiler`] aggregates the wall-clock microseconds each pipeline
//! phase spends — validate / compile / schedule / repair / system-DSE /
//! simulate / objective, keyed by the proposal's
//! `ScheduleFootprint` class — into per-`(phase, class)` [`Histogram`]s,
//! plus "hot key" tables (time per workload, per system-DSE grid point)
//! for top-k reporting. The end-of-run [`ProfileSnapshot`] renders to the
//! `profile.json` schema documented in DESIGN.md §11.
//!
//! The profiler is deliberately **not** part of the [`Collector`] world:
//! it never emits events, never touches the ambient metrics [`Registry`],
//! and stores real (non-deterministic) wall times. Keeping it out of the
//! trace path is what lets profiling run unconditionally while traces stay
//! byte-identical with the profiler installed or absent — the determinism
//! suite proves exactly that.
//!
//! Like the collector, a profiler is installed per thread
//! ([`install_profiler`]) and discovered with [`current_profiler`]; code
//! that fans work out to a pool captures the `Arc` instead (worker threads
//! have no thread-local state).
//!
//! [`Collector`]: crate::Collector
//! [`Registry`]: crate::Registry

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Obj;
use crate::metrics::Histogram;

/// A pipeline phase, as attributed in `profile.json`.
///
/// [`Phase::Eval`] is the umbrella around one full proposal evaluation
/// (cache misses only — a hit replays a stored artifact and costs no
/// attributable phase time); the other evaluation-side phases nest inside
/// it, so `attributed / eval_total` is the coverage ratio the acceptance
/// gate checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// System-ADG validation plus the objective's hard admissibility gate.
    Validate,
    /// Up-front mDFG variant generation (once per run, outside `Eval`).
    Compile,
    /// Full from-scratch scheduling of one variant.
    Schedule,
    /// Incremental schedule repair (fast path and fallback).
    Repair,
    /// The nested exhaustive system-parameter sweep.
    SystemDse,
    /// Cycle-level simulation (bench/overlay execution, outside `Eval`).
    Simulate,
    /// Closed-form analytic lower-bound pruning in the simulator-backed
    /// system DSE.
    Analytic,
    /// Spatial placement onto the modeled clock-region grid (only under a
    /// placement-aware objective; absent from default-config profiles).
    Place,
    /// Performance estimation and fitness scoring.
    Objective,
    /// Umbrella: one uncached proposal evaluation end to end.
    Eval,
}

impl Phase {
    /// Every phase, in canonical report order.
    pub const ALL: [Phase; 10] = [
        Phase::Validate,
        Phase::Compile,
        Phase::Schedule,
        Phase::Repair,
        Phase::SystemDse,
        Phase::Simulate,
        Phase::Analytic,
        Phase::Place,
        Phase::Objective,
        Phase::Eval,
    ];

    /// Phases nested inside [`Phase::Eval`]; their sum is the "attributed"
    /// share of total evaluation time.
    pub const EVAL_INNER: [Phase; 6] = [
        Phase::Validate,
        Phase::Schedule,
        Phase::Repair,
        Phase::SystemDse,
        Phase::Place,
        Phase::Objective,
    ];

    /// Stable label used in `profile.json` and the phase table.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Validate => "validate",
            Phase::Compile => "compile",
            Phase::Schedule => "schedule",
            Phase::Repair => "repair",
            Phase::SystemDse => "system-dse",
            Phase::Simulate => "simulate",
            Phase::Analytic => "analytic",
            Phase::Place => "place",
            Phase::Objective => "objective",
            Phase::Eval => "eval",
        }
    }
}

/// Class label for phase samples with no associated proposal footprint
/// (compile, simulate, seed evaluations run with `ScheduleFootprint::Pure`
/// and use its name instead).
pub const NO_CLASS: &str = "-";

#[derive(Debug, Default, Clone, Copy)]
struct HotAgg {
    count: u64,
    total_us: u64,
}

/// Aggregates phase wall times. Cheap to share (`Arc`) and update from
/// worker threads: one mutex-guarded map lookup plus relaxed atomic
/// histogram ops per sample.
#[derive(Debug, Default)]
pub struct Profiler {
    phases: Mutex<BTreeMap<(Phase, &'static str), Histogram>>,
    hot: Mutex<BTreeMap<(&'static str, String), HotAgg>>,
}

impl Profiler {
    /// A fresh, empty profiler.
    pub fn new() -> Arc<Self> {
        Arc::new(Profiler::default())
    }

    /// Record one phase sample of `micros` wall microseconds.
    pub fn record(&self, phase: Phase, class: &'static str, micros: u64) {
        let hist = {
            let mut m = self.phases.lock().unwrap();
            m.entry((phase, class)).or_default().clone()
        };
        hist.record(micros);
    }

    /// Fold `micros` into the hot-key table `dim` (e.g. `"workload"`,
    /// `"sys-grid"`) under `key`.
    pub fn record_hot(&self, dim: &'static str, key: &str, micros: u64) {
        let mut m = self.hot.lock().unwrap();
        let agg = m.entry((dim, key.to_string())).or_default();
        agg.count += 1;
        agg.total_us += micros;
    }

    /// Start timing a phase; the sample is recorded when the returned
    /// guard drops.
    pub fn phase(self: &Arc<Self>, phase: Phase, class: &'static str) -> PhaseTimer {
        PhaseTimer {
            prof: Arc::clone(self),
            phase,
            class,
            start: Instant::now(),
        }
    }

    /// Start timing a hot-key entry; recorded under (`dim`, `key`) on drop.
    pub fn hot_timer(self: &Arc<Self>, dim: &'static str, key: &str) -> HotTimer {
        HotTimer {
            prof: Arc::clone(self),
            dim,
            key: key.to_string(),
            start: Instant::now(),
        }
    }

    /// A point-in-time copy of every aggregate, in canonical order.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let rows = {
            let m = self.phases.lock().unwrap();
            m.iter()
                .map(|((phase, class), h)| PhaseRow {
                    phase: *phase,
                    class,
                    count: h.count(),
                    total_us: h.sum(),
                    mean_us: h.mean(),
                    p50_us: h.percentile(50.0),
                    p95_us: h.percentile(95.0),
                    p99_us: h.percentile(99.0),
                    max_us: h.max(),
                })
                .collect()
        };
        let hot = {
            let m = self.hot.lock().unwrap();
            m.iter()
                .map(|((dim, key), agg)| HotRow {
                    dim,
                    key: key.clone(),
                    count: agg.count,
                    total_us: agg.total_us,
                })
                .collect()
        };
        ProfileSnapshot { rows, hot }
    }
}

/// RAII guard from [`Profiler::phase`]; records elapsed µs on drop.
#[must_use = "a phase sample is recorded when its timer drops"]
pub struct PhaseTimer {
    prof: Arc<Profiler>,
    phase: Phase,
    class: &'static str,
    start: Instant,
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        let us = self.start.elapsed().as_micros() as u64;
        self.prof.record(self.phase, self.class, us);
    }
}

/// RAII guard from [`Profiler::hot_timer`].
#[must_use = "a hot-key sample is recorded when its timer drops"]
pub struct HotTimer {
    prof: Arc<Profiler>,
    dim: &'static str,
    key: String,
    start: Instant,
}

impl Drop for HotTimer {
    fn drop(&mut self) {
        let us = self.start.elapsed().as_micros() as u64;
        self.prof.record_hot(self.dim, &self.key, us);
    }
}

thread_local! {
    static PROFILERS: RefCell<Vec<Arc<Profiler>>> = const { RefCell::new(Vec::new()) };
}

/// Install `profiler` as this thread's current profiler until the returned
/// guard drops. Installs nest; the innermost wins.
#[must_use = "the profiler is uninstalled when this guard drops"]
pub fn install_profiler(profiler: Arc<Profiler>) -> ProfilerGuard {
    PROFILERS.with(|s| s.borrow_mut().push(profiler));
    ProfilerGuard { _priv: () }
}

/// Guard returned by [`install_profiler`]; pops the profiler on drop.
pub struct ProfilerGuard {
    _priv: (),
}

impl Drop for ProfilerGuard {
    fn drop(&mut self) {
        PROFILERS.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// The innermost installed profiler on this thread, if any.
pub fn current_profiler() -> Option<Arc<Profiler>> {
    PROFILERS.with(|s| s.borrow().last().cloned())
}

/// Time a phase against the current profiler, if one is installed. For
/// leaf call sites (e.g. the simulator entry point) that should not carry
/// profiler plumbing in their signatures.
pub fn maybe_phase(phase: Phase, class: &'static str) -> Option<PhaseTimer> {
    current_profiler().map(|p| p.phase(phase, class))
}

/// One `(phase, class)` aggregate in a [`ProfileSnapshot`].
#[derive(Debug, Clone)]
pub struct PhaseRow {
    pub phase: Phase,
    pub class: &'static str,
    pub count: u64,
    pub total_us: u64,
    pub mean_us: f64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

/// One hot-key aggregate (`dim` × `key`).
#[derive(Debug, Clone)]
pub struct HotRow {
    pub dim: &'static str,
    pub key: String,
    pub count: u64,
    pub total_us: u64,
}

/// Cache traffic the run saw, used to compute cache-hit-adjusted phase
/// costs: `total_us × lookups ⁄ misses` estimates what a phase would have
/// cost had every memoized hit been computed fresh.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    pub eval_hits: u64,
    pub eval_misses: u64,
    pub system_hits: u64,
    pub system_misses: u64,
}

impl CacheStats {
    /// Adjustment factor for phases inside the evaluation cache.
    fn eval_factor(&self) -> f64 {
        factor(self.eval_hits, self.eval_misses)
    }

    /// Adjustment factor for the system-DSE cache (which nests inside the
    /// evaluation cache, so both factors compound).
    fn system_factor(&self) -> f64 {
        self.eval_factor() * factor(self.system_hits, self.system_misses)
    }
}

fn factor(hits: u64, misses: u64) -> f64 {
    if misses == 0 {
        1.0
    } else {
        (hits + misses) as f64 / misses as f64
    }
}

/// A frozen view of a [`Profiler`], ready for reporting.
#[derive(Debug, Clone, Default)]
pub struct ProfileSnapshot {
    /// Per-`(phase, class)` aggregates, keyed canonically.
    pub rows: Vec<PhaseRow>,
    /// Hot-key aggregates, keyed canonically.
    pub hot: Vec<HotRow>,
}

impl ProfileSnapshot {
    /// Total microseconds recorded for one phase across all classes.
    pub fn phase_total_us(&self, phase: Phase) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.phase == phase)
            .map(|r| r.total_us)
            .sum()
    }

    /// Microseconds attributed to a named phase inside evaluations.
    pub fn attributed_us(&self) -> u64 {
        Phase::EVAL_INNER
            .iter()
            .map(|&p| self.phase_total_us(p))
            .sum()
    }

    /// Total umbrella evaluation microseconds (uncached evaluations only).
    pub fn eval_total_us(&self) -> u64 {
        self.phase_total_us(Phase::Eval)
    }

    /// Share of total eval wall time attributed to a named phase. With
    /// serial evaluation this is ≤ 1; per-workload workers overlap, so a
    /// parallel run can exceed it. `1.0` when nothing was evaluated.
    pub fn coverage(&self) -> f64 {
        let total = self.eval_total_us();
        if total == 0 {
            1.0
        } else {
            self.attributed_us() as f64 / total as f64
        }
    }

    /// The top-`k` hottest keys of dimension `dim` by total time.
    pub fn top_hot(&self, dim: &str, k: usize) -> Vec<&HotRow> {
        let mut rows: Vec<&HotRow> = self.hot.iter().filter(|r| r.dim == dim).collect();
        rows.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.key.cmp(&b.key)));
        rows.truncate(k);
        rows
    }

    /// Render the `overgen.profile/1` JSON document (DESIGN.md §11).
    pub fn render_json(&self, experiment: &str, cache: &CacheStats, top_k: usize) -> String {
        let eval_total = self.eval_total_us();
        let phases = arr(self.rows.iter().map(|r| {
            let share = if eval_total > 0 {
                r.total_us as f64 / eval_total as f64
            } else {
                0.0
            };
            let adjust = match r.phase {
                Phase::SystemDse => cache.system_factor(),
                Phase::Compile | Phase::Simulate => 1.0,
                _ => cache.eval_factor(),
            };
            Obj::new()
                .str("phase", r.phase.name())
                .str("class", r.class)
                .u64("count", r.count)
                .u64("total_us", r.total_us)
                .f64("mean_us", r.mean_us)
                .u64("p50_us", r.p50_us)
                .u64("p95_us", r.p95_us)
                .u64("p99_us", r.p99_us)
                .u64("max_us", r.max_us)
                .f64("share", share)
                .f64("cache_adjusted_us", r.total_us as f64 * adjust)
                .finish()
        }));
        let hot_dim = |dim: &str| {
            arr(self.top_hot(dim, top_k).iter().map(|r| {
                Obj::new()
                    .str("key", &r.key)
                    .u64("count", r.count)
                    .u64("total_us", r.total_us)
                    .finish()
            }))
        };
        let hot = Obj::new()
            .raw("workload", &hot_dim("workload"))
            .raw("sys-grid", &hot_dim("sys-grid"))
            .finish();
        let cache_obj = Obj::new()
            .u64("eval_hits", cache.eval_hits)
            .u64("eval_misses", cache.eval_misses)
            .u64("system_hits", cache.system_hits)
            .u64("system_misses", cache.system_misses)
            .finish();
        Obj::new()
            .str("schema", "overgen.profile/1")
            .str("experiment", experiment)
            .str("clock", "wall_us")
            .u64("eval_total_us", eval_total)
            .u64("attributed_us", self.attributed_us())
            .f64("coverage", self.coverage())
            .raw("cache", &cache_obj)
            .raw("phases", &phases)
            .raw("hot", &hot)
            .finish()
    }
}

fn arr<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn phase_timer_records_into_the_right_bucket() {
        let p = Profiler::new();
        {
            let _t = p.phase(Phase::Repair, "additive");
        }
        p.record(Phase::Repair, "additive", 100);
        p.record(Phase::Eval, "additive", 400);
        let snap = p.snapshot();
        let row = snap
            .rows
            .iter()
            .find(|r| r.phase == Phase::Repair && r.class == "additive")
            .expect("repair row exists");
        assert_eq!(row.count, 2);
        assert!(row.total_us >= 100);
        assert_eq!(snap.eval_total_us(), 400);
    }

    #[test]
    fn coverage_is_attributed_over_eval_total() {
        let p = Profiler::new();
        p.record(Phase::Eval, NO_CLASS, 1000);
        p.record(Phase::Schedule, NO_CLASS, 600);
        p.record(Phase::SystemDse, NO_CLASS, 390);
        // Compile and simulate sit outside the eval umbrella.
        p.record(Phase::Compile, NO_CLASS, 5000);
        p.record(Phase::Simulate, NO_CLASS, 5000);
        let snap = p.snapshot();
        assert_eq!(snap.attributed_us(), 990);
        assert!((snap.coverage() - 0.99).abs() < 1e-12);
        // An idle profiler reports full coverage, not a 0/0 panic.
        assert_eq!(Profiler::new().snapshot().coverage(), 1.0);
    }

    #[test]
    fn hot_keys_rank_by_total_time() {
        let p = Profiler::new();
        p.record_hot("workload", "gemm", 50);
        p.record_hot("workload", "gemm", 50);
        p.record_hot("workload", "fir", 30);
        p.record_hot("workload", "spmv", 200);
        p.record_hot("sys-grid", "tiles=4", 10);
        let snap = p.snapshot();
        let top: Vec<&str> = snap
            .top_hot("workload", 2)
            .iter()
            .map(|r| r.key.as_str())
            .collect();
        assert_eq!(top, ["spmv", "gemm"]);
        assert_eq!(snap.top_hot("sys-grid", 5).len(), 1);
    }

    #[test]
    fn install_nests_and_maybe_phase_uses_innermost() {
        assert!(current_profiler().is_none());
        assert!(maybe_phase(Phase::Simulate, NO_CLASS).is_none());
        let outer = Profiler::new();
        let inner = Profiler::new();
        let _g1 = install_profiler(outer.clone());
        {
            let _g2 = install_profiler(inner.clone());
            drop(maybe_phase(Phase::Simulate, NO_CLASS));
        }
        drop(maybe_phase(Phase::Compile, NO_CLASS));
        assert_eq!(inner.snapshot().phase_total_us(Phase::Compile), 0);
        assert_eq!(inner.snapshot().rows.len(), 1);
        assert_eq!(outer.snapshot().rows.len(), 1);
        assert_eq!(outer.snapshot().rows[0].phase, Phase::Compile);
    }

    #[test]
    fn render_json_carries_schema_and_cache_adjustment() {
        let p = Profiler::new();
        p.record(Phase::Eval, "pure", 1000);
        p.record(Phase::Schedule, "pure", 980);
        p.record_hot("workload", "gemm", 980);
        let cache = CacheStats {
            eval_hits: 3,
            eval_misses: 1,
            ..Default::default()
        };
        let doc = p.snapshot().render_json("unit", &cache, 5);
        let v = json::parse(&doc).expect("profile.json parses");
        assert_eq!(v.get("schema").unwrap().as_str(), Some("overgen.profile/1"));
        assert_eq!(v.get("eval_total_us").unwrap().as_u64(), Some(1000));
        assert_eq!(v.get("attributed_us").unwrap().as_u64(), Some(980));
        // 4 lookups / 1 miss: adjusted cost is 4x the measured cost.
        let phases = match v.get("phases").unwrap() {
            json::Value::Arr(a) => a,
            other => panic!("phases not an array: {other:?}"),
        };
        let sched = phases
            .iter()
            .find(|p| p.get("phase").and_then(json::Value::as_str) == Some("schedule"))
            .unwrap();
        assert_eq!(
            sched.get("cache_adjusted_us").and_then(json::Value::as_f64),
            Some(3920.0)
        );
        let hot = v.get("hot").unwrap().get("workload").unwrap();
        match hot {
            json::Value::Arr(a) => {
                assert_eq!(a[0].get("key").unwrap().as_str(), Some("gemm"));
            }
            other => panic!("hot.workload not an array: {other:?}"),
        }
    }

    #[test]
    fn zero_misses_mean_no_adjustment() {
        let c = CacheStats {
            eval_hits: 10,
            eval_misses: 0,
            system_hits: 2,
            system_misses: 0,
        };
        assert_eq!(c.eval_factor(), 1.0);
        assert_eq!(c.system_factor(), 1.0);
    }
}
