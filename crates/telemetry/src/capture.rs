//! Deterministic capture/replay of telemetry for worker threads.
//!
//! Parallel code cannot emit straight into a shared sink: sequence numbers
//! and deterministic-clock ticks are stamped at emit time, so interleaved
//! workers would produce a different byte stream on every run. Instead a
//! worker runs under a *capture* collector that records structured
//! operations ([`CaptureOp`]) without stamping them; the coordinating
//! thread later [`replay`]s each worker's [`CapturedTrace`] in a canonical
//! order, re-stamping `seq`/`t` through the real collector exactly as
//! serial execution would have. The result: the trace produced by N
//! workers is byte-identical to the one produced inline.
//!
//! Metrics are *not* captured: a capture collector shares its parent's
//! [`Registry`](crate::Registry), and counter/histogram updates are
//! commutative, so concurrent workers land on identical final totals.
//!
//! Span open/close pairs are matched through process-global tokens, which
//! never appear in serialized output — their allocation order may race
//! across threads without harming determinism.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::span;
use crate::{Collector, FieldValue};

/// One recorded telemetry operation, to be re-stamped at replay time.
#[derive(Debug, Clone)]
pub(crate) enum CaptureOp {
    /// A structured event (`event!` or `Collector::emit`).
    Event {
        kind: String,
        fields: Vec<(String, FieldValue)>,
    },
    /// A span opened: consumes one clock tick at replay, like a serial
    /// span-enter does.
    SpanOpen { token: u64 },
    /// A span closed; `rel_depth` is relative to the capture root.
    SpanClose {
        token: u64,
        name: String,
        rel_depth: u64,
        fields: Vec<(String, FieldValue)>,
    },
    /// A full registry snapshot was requested.
    Metrics,
}

/// An ordered recording of the telemetry a closure emitted under
/// [`capture`]. Replayable any number of times, on any thread.
#[derive(Debug, Clone, Default)]
pub struct CapturedTrace {
    pub(crate) ops: Vec<CaptureOp>,
}

impl CapturedTrace {
    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Export to a serializable form: span tokens are process-global and
    /// meaningless outside this process, so each distinct token is rewritten
    /// to a dense per-trace `slot` (numbered in first-appearance order).
    /// Replaying `from_portable(to_portable())` produces byte-identical
    /// output to replaying the original trace.
    pub fn to_portable(&self) -> Vec<PortableOp> {
        let mut slots: BTreeMap<u64, u64> = BTreeMap::new();
        let mut slot_of = |token: u64| {
            let next = slots.len() as u64;
            *slots.entry(token).or_insert(next)
        };
        self.ops
            .iter()
            .map(|op| match op {
                CaptureOp::Event { kind, fields } => PortableOp::Event {
                    kind: kind.clone(),
                    fields: fields.clone(),
                },
                CaptureOp::SpanOpen { token } => PortableOp::SpanOpen {
                    slot: slot_of(*token),
                },
                CaptureOp::SpanClose {
                    token,
                    name,
                    rel_depth,
                    fields,
                } => PortableOp::SpanClose {
                    slot: slot_of(*token),
                    name: name.clone(),
                    rel_depth: *rel_depth,
                    fields: fields.clone(),
                },
                CaptureOp::Metrics => PortableOp::Metrics,
            })
            .collect()
    }

    /// Rebuild a trace from portable ops, allocating a fresh process-global
    /// token per slot so the rebuilt trace pairs spans like any other
    /// capture and can be replayed concurrently with unrelated traces.
    pub fn from_portable(ops: &[PortableOp]) -> CapturedTrace {
        let mut tokens: BTreeMap<u64, u64> = BTreeMap::new();
        let mut token_of = |slot: u64| *tokens.entry(slot).or_insert_with(next_token);
        CapturedTrace {
            ops: ops
                .iter()
                .map(|op| match op {
                    PortableOp::Event { kind, fields } => CaptureOp::Event {
                        kind: kind.clone(),
                        fields: fields.clone(),
                    },
                    PortableOp::SpanOpen { slot } => CaptureOp::SpanOpen {
                        token: token_of(*slot),
                    },
                    PortableOp::SpanClose {
                        slot,
                        name,
                        rel_depth,
                        fields,
                    } => CaptureOp::SpanClose {
                        token: token_of(*slot),
                        name: name.clone(),
                        rel_depth: *rel_depth,
                        fields: fields.clone(),
                    },
                    PortableOp::Metrics => CaptureOp::Metrics,
                })
                .collect(),
        }
    }
}

/// A serializable view of one captured operation; see
/// [`CapturedTrace::to_portable`]. `slot` is the per-trace span-pair index
/// that replaces the process-global token.
#[derive(Debug, Clone, PartialEq)]
pub enum PortableOp {
    /// A structured event.
    Event {
        /// Dotted event type.
        kind: String,
        /// Event fields in emission order.
        fields: Vec<(String, FieldValue)>,
    },
    /// A span opened (consumes one clock tick at replay).
    SpanOpen {
        /// Per-trace pair index.
        slot: u64,
    },
    /// A span closed.
    SpanClose {
        /// Per-trace pair index matching the open.
        slot: u64,
        /// Span name.
        name: String,
        /// Depth relative to the capture root.
        rel_depth: u64,
        /// Span fields.
        fields: Vec<(String, FieldValue)>,
    },
    /// A full registry snapshot was requested.
    Metrics,
}

/// Process-global span-token source. Tokens only pair opens with closes
/// inside one `CapturedTrace`; they are never serialized, so cross-thread
/// allocation order is free to race.
static TOKEN: AtomicU64 = AtomicU64::new(0);

pub(crate) fn next_token() -> u64 {
    TOKEN.fetch_add(1, Ordering::Relaxed)
}

/// Run `f` with its telemetry recorded instead of emitted.
///
/// When `parent` is `Some`, a capture collector sharing the parent's
/// registry is installed for the duration of `f` and every event/span is
/// recorded into the returned [`CapturedTrace`]. Span depth is measured
/// relative to the capture root (the thread-local depth is zeroed and
/// restored), so capturing inline on the coordinating thread and capturing
/// on a fresh worker thread record identical operations.
///
/// When `parent` is `None` (telemetry disabled), `f` runs bare and the
/// trace is empty.
pub fn capture<T>(parent: Option<&Arc<Collector>>, f: impl FnOnce() -> T) -> (T, CapturedTrace) {
    let Some(parent) = parent else {
        return (f(), CapturedTrace::default());
    };
    let cap = Collector::capture(parent.registry().clone());
    let out = {
        let _install = crate::install(cap.clone());
        let _depth = span::DepthResetGuard::new();
        f()
    };
    (
        out,
        CapturedTrace {
            ops: cap.take_ops(),
        },
    )
}

/// Like [`capture`], but with a *fresh* metrics registry instead of a
/// shared one, and installed unconditionally (even when no telemetry is
/// active). Every metric update `f` makes lands in the returned
/// [`Registry`](crate::Registry), so callers can treat the full side
/// effects of `f` — trace *and* metrics — as a replayable artifact:
/// memoize the triple, then on every use (first run or cache hit) replay
/// the trace and `merge_from` the registry. That makes a cache hit
/// observationally identical to re-running `f`.
pub fn capture_isolated<T>(f: impl FnOnce() -> T) -> (T, CapturedTrace, crate::Registry) {
    let cap = Collector::capture(crate::Registry::new());
    let out = {
        let _install = crate::install(cap.clone());
        let _depth = span::DepthResetGuard::new();
        f()
    };
    let registry = cap.registry().clone();
    (
        out,
        CapturedTrace {
            ops: cap.take_ops(),
        },
        registry,
    )
}

/// Replay a captured trace into this thread's current collector,
/// re-stamping `seq`/`t` as if the operations were being emitted serially
/// right now. Span depths are rebased onto the replaying thread's current
/// span depth. No-op when no collector is installed.
pub fn replay(trace: &CapturedTrace) {
    if trace.ops.is_empty() {
        return;
    }
    if let Some(parent) = crate::current() {
        parent.replay_ops(&trace.ops, span::current_depth());
    }
}

pub(crate) fn borrow_fields(fields: &[(String, FieldValue)]) -> Vec<(&str, FieldValue)> {
    fields
        .iter()
        .map(|(k, v)| (k.as_str(), v.clone()))
        .collect()
}

pub(crate) fn own_fields(fields: &[(&str, FieldValue)]) -> Vec<(String, FieldValue)> {
    fields
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

pub(crate) fn replay_into_sink(collector: &Collector, ops: &[CaptureOp], base_depth: u64) {
    // Token -> start timestamp for spans opened during this replay.
    let mut starts: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match op {
            CaptureOp::SpanOpen { token } => {
                // A serial span-enter consumes one clock tick for its start
                // timestamp; reproduce that here.
                starts.insert(*token, collector.now());
            }
            CaptureOp::Event { kind, fields } => {
                collector.emit(kind, &borrow_fields(fields));
            }
            CaptureOp::SpanClose {
                token,
                name,
                rel_depth,
                fields,
            } => {
                let start = starts.remove(token).unwrap_or_else(|| collector.now());
                let end = collector.now();
                collector.emit_span(
                    name,
                    base_depth + rel_depth,
                    start,
                    end,
                    &borrow_fields(fields),
                );
            }
            CaptureOp::Metrics => collector.snapshot_metrics(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{event, install, json, span, Collector};

    fn emit_workload(tag: u64) {
        let _s = span!("work.outer", tag = tag);
        event!("work.step", i = 1u64);
        {
            let _inner = span!("work.inner");
            event!("work.step", i = 2u64);
        }
    }

    #[test]
    fn capture_replay_matches_serial_emission() {
        // Serial reference.
        let (c1, r1) = Collector::ring(64);
        {
            let _g = install(c1.clone());
            event!("pre");
            emit_workload(7);
            event!("post");
        }
        // Captured on this thread, replayed after.
        let (c2, r2) = Collector::ring(64);
        {
            let _g = install(c2.clone());
            event!("pre");
            let ((), trace) = capture(Some(&c2), || emit_workload(7));
            replay(&trace);
            event!("post");
        }
        assert_eq!(r1.to_jsonl(), r2.to_jsonl());
    }

    #[test]
    fn capture_on_worker_thread_matches_inline() {
        let run_inline = || {
            let (c, ring) = Collector::ring(64);
            let _g = install(c.clone());
            let _outer = span!("root");
            let ((), t) = capture(Some(&c), || emit_workload(3));
            replay(&t);
            drop(_outer);
            ring.to_jsonl()
        };
        let run_threaded = || {
            let (c, ring) = Collector::ring(64);
            let _g = install(c.clone());
            let _outer = span!("root");
            let t = std::thread::scope(|s| {
                let c = &c;
                s.spawn(move || capture(Some(c), || emit_workload(3)).1)
                    .join()
                    .unwrap()
            });
            replay(&t);
            drop(_outer);
            ring.to_jsonl()
        };
        let (a, b) = (run_inline(), run_threaded());
        assert_eq!(a, b);
        // Depth rebasing: spans inside the capture sit under "root".
        let inner_depth = a
            .lines()
            .map(|l| json::parse(l).unwrap())
            .find(|v| v.get("name").and_then(json::Value::as_str) == Some("work.inner"))
            .and_then(|v| v.get("depth").and_then(|d| d.as_u64()))
            .unwrap();
        assert_eq!(inner_depth, 2, "root(0) -> work.outer(1) -> work.inner(2)");
    }

    #[test]
    fn nested_capture_composes() {
        let (c, ring) = Collector::ring(64);
        let _g = install(c.clone());
        let ((), outer) = capture(Some(&c), || {
            let _s = span!("chain");
            let current = crate::current().unwrap();
            let ((), inner) = capture(Some(&current), || emit_workload(1));
            replay(&inner);
        });
        replay(&outer);

        // Compare against fully serial emission.
        let (c2, ring2) = Collector::ring(64);
        {
            let _g2 = install(c2.clone());
            let _s = span!("chain");
            emit_workload(1);
        }
        assert_eq!(ring.to_jsonl(), ring2.to_jsonl());
    }

    #[test]
    fn captured_counters_land_in_parent_registry() {
        let (c, _ring) = Collector::ring(8);
        let _g = install(c.clone());
        let ((), _t) = capture(Some(&c), || {
            crate::current().unwrap().registry().counter("cap.n").inc();
        });
        assert_eq!(c.registry().counter_value("cap.n"), 1);
    }

    #[test]
    fn capture_isolated_replays_like_fresh_execution() {
        let work = || {
            let _s = span!("eval");
            event!("eval.step");
            crate::current().unwrap().registry().counter("eval.n").inc();
        };
        // Reference: serial emission.
        let (c1, r1) = Collector::ring(64);
        {
            let _g = install(c1.clone());
            work();
        }
        // Captured once, applied twice (as a cache hit would).
        let (c2, r2) = Collector::ring(64);
        {
            let _g = install(c2.clone());
            let ((), trace, reg) = capture_isolated(work);
            for _ in 0..2 {
                replay(&trace);
                c2.registry().merge_from(&reg);
            }
        }
        let serial = r1.to_jsonl();
        let replayed = r2.to_jsonl();
        let first: Vec<&str> = replayed.lines().take(serial.lines().count()).collect();
        assert_eq!(serial.trim_end(), first.join("\n"));
        assert_eq!(c2.registry().counter_value("eval.n"), 2);
        // Isolated capture works with no telemetry installed at all.
        let ((), t, reg) = capture_isolated(work);
        assert!(!t.is_empty());
        assert_eq!(reg.counter_value("eval.n"), 1);
    }

    #[test]
    fn capture_without_parent_is_bare() {
        let ((), t) = capture(None, || emit_workload(0));
        assert!(t.is_empty());
        replay(&t); // no collector installed: must not panic
    }

    #[test]
    fn portable_round_trip_replays_byte_identically() {
        let ((), trace, _reg) = capture_isolated(|| {
            event!("pre", f = 1.5f64, s = "x", neg = -3i64, b = true);
            emit_workload(9);
        });
        let portable = trace.to_portable();
        // Slots are dense and start at 0.
        let max_slot = portable
            .iter()
            .filter_map(|op| match op {
                PortableOp::SpanOpen { slot } | PortableOp::SpanClose { slot, .. } => Some(*slot),
                _ => None,
            })
            .max()
            .unwrap();
        assert_eq!(max_slot, 1, "two distinct spans -> slots 0 and 1");
        let rebuilt = CapturedTrace::from_portable(&portable);

        let replay_to_jsonl = |t: &CapturedTrace| {
            let (c, ring) = Collector::ring(64);
            let _g = install(c);
            replay(t);
            ring.to_jsonl()
        };
        assert_eq!(replay_to_jsonl(&trace), replay_to_jsonl(&rebuilt));
        // Exporting the rebuilt trace again yields the same portable ops.
        assert_eq!(rebuilt.to_portable(), portable);
    }
}
