//! A small in-tree JSON writer and parser (no serde).
//!
//! The writer produces deterministic output: fields appear in insertion
//! order, floats render with Rust's shortest-roundtrip formatting, and
//! strings are escaped per RFC 8259. The parser is the minimal
//! recursive-descent reader `trace-summary` needs to consume JSONL traces.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape `s` into `out` as JSON string *contents* (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Escape and quote a string.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Render an `f64` as a JSON number (JSON has no NaN/Inf; they map to null).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // `{}` prints integral floats without a dot; keep them numbers but
        // unambiguous as floats is unnecessary — JSON does not distinguish.
        if s == "-0" {
            s = "0".into();
        }
        s
    } else {
        "null".into()
    }
}

/// An insertion-ordered JSON object writer.
#[derive(Debug, Clone, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// Start an empty object.
    pub fn new() -> Self {
        Obj { buf: String::new() }
    }

    fn key(&mut self, k: &str) -> &mut String {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
        &mut self.buf
    }

    /// Add a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        let _ = write!(self.key(k), "{v}");
        self
    }

    /// Add a signed integer field.
    pub fn i64(mut self, k: &str, v: i64) -> Self {
        let _ = write!(self.key(k), "{v}");
        self
    }

    /// Add a float field.
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        let n = number(v);
        self.key(k).push_str(&n);
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k).push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a pre-rendered JSON value (object, array, ...).
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k).push_str(v);
        self
    }

    /// Finish: `{...}`.
    pub fn finish(self) -> String {
        let mut out = String::with_capacity(self.buf.len() + 2);
        out.push('{');
        out.push_str(&self.buf);
        out.push('}');
        out
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order preserved via `BTreeMap` lookup semantics).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String contents, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Number as u64, if numeric and non-negative integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Boolean, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse one JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(s: &str) -> Result<Value, String> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs: combine when a high surrogate
                            // is followed by an escaped low surrogate.
                            let cp = if (0xd800..0xdc00).contains(&hex)
                                && self.bytes.get(self.pos) == Some(&b'\\')
                                && self.bytes.get(self.pos + 1) == Some(&b'u')
                            {
                                let low = self
                                    .bytes
                                    .get(self.pos + 2..self.pos + 6)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or("bad low surrogate")?;
                                self.pos += 6;
                                0x10000 + ((hex - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                hex
                            };
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xf0 => 4,
                        b if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = rest.get(..len).ok_or("truncated utf-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(quote("a\"b"), r#""a\"b""#);
        assert_eq!(quote("line\nbreak"), r#""line\nbreak""#);
        assert_eq!(quote("tab\tslash\\"), r#""tab\tslash\\""#);
        assert_eq!(quote("\u{01}"), "\"\\u0001\"");
    }

    #[test]
    fn control_chars_hex_escaped() {
        assert_eq!(quote("\u{1f}"), "\"\\u001f\"");
        assert_eq!(quote("\u{08}\u{0c}"), "\"\\b\\f\"");
    }

    #[test]
    fn object_builder_orders_fields() {
        let s = Obj::new()
            .str("type", "dse.accept")
            .u64("iter", 3)
            .f64("delta", 0.25)
            .bool("better", true)
            .finish();
        assert_eq!(
            s,
            r#"{"type":"dse.accept","iter":3,"delta":0.25,"better":true}"#
        );
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn writer_parser_round_trip() {
        let line = Obj::new()
            .str("name", "we\u{1f600}ird \"quoted\" \\ path\n")
            .u64("n", 18446744073709551615)
            .f64("x", -1.5e-9)
            .raw("a", "[1,2,3]")
            .finish();
        let v = parse(&line).unwrap();
        assert_eq!(
            v.get("name").and_then(Value::as_str),
            Some("we\u{1f600}ird \"quoted\" \\ path\n")
        );
        assert_eq!(v.get("x").and_then(Value::as_f64), Some(-1.5e-9));
        assert_eq!(
            v.get("a"),
            Some(&Value::Arr(vec![
                Value::Num(1.0),
                Value::Num(2.0),
                Value::Num(3.0)
            ]))
        );
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        let v = parse(r#"{"s":"a\u0041\u00e9\ud83d\ude00\n"}"#).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("aAé\u{1f600}\n"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nul").is_err());
    }
}
