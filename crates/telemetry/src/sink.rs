//! Pluggable JSONL sinks.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Something JSONL lines are written to. One call per line; implementations
/// must keep lines atomic under concurrency.
pub trait Sink: Send + Sync {
    /// Append one line (without trailing newline).
    fn write_line(&self, line: &str);
    /// Flush buffered output.
    fn flush(&self) {}
}

/// Discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn write_line(&self, _line: &str) {}
}

/// A bounded in-memory ring buffer of lines — the test sink.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    lines: Mutex<VecDeque<String>>,
}

impl RingSink {
    /// Create with a maximum retained line count.
    pub fn new(cap: usize) -> Arc<Self> {
        Arc::new(RingSink {
            cap: cap.max(1),
            lines: Mutex::new(VecDeque::new()),
        })
    }

    /// Snapshot of the retained lines, oldest first.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap().iter().cloned().collect()
    }

    /// The whole buffer joined with newlines (a JSONL document).
    pub fn to_jsonl(&self) -> String {
        let mut s = self.lines().join("\n");
        if !s.is_empty() {
            s.push('\n');
        }
        s
    }

    /// Number of retained lines.
    pub fn len(&self) -> usize {
        self.lines.lock().unwrap().len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for RingSink {
    fn write_line(&self, line: &str) {
        let mut l = self.lines.lock().unwrap();
        if l.len() == self.cap {
            l.pop_front();
        }
        l.push_back(line.to_string());
    }
}

/// A buffered JSONL file writer for `results/` traces.
#[derive(Debug)]
pub struct FileSink {
    path: PathBuf,
    w: Mutex<BufWriter<File>>,
}

impl FileSink {
    /// Create (truncating) the file at `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Arc<Self>> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let f = File::create(&path)?;
        Ok(Arc::new(FileSink {
            path,
            w: Mutex::new(BufWriter::new(f)),
        }))
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Sink for FileSink {
    fn write_line(&self, line: &str) {
        let mut w = self.w.lock().unwrap();
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
    }

    fn flush(&self) {
        let _ = self.w.lock().unwrap().flush();
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        let _ = self.w.lock().unwrap().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_caps_and_orders() {
        let r = RingSink::new(3);
        for i in 0..5 {
            r.write_line(&format!("l{i}"));
        }
        assert_eq!(r.lines(), vec!["l2", "l3", "l4"]);
        assert_eq!(r.len(), 3);
        assert!(r.to_jsonl().ends_with("l4\n"));
    }

    #[test]
    fn file_sink_writes_lines() {
        let dir = std::env::temp_dir().join("overgen-telemetry-test");
        let path = dir.join("t.jsonl");
        let s = FileSink::create(&path).unwrap();
        s.write_line("{\"a\":1}");
        s.write_line("{\"b\":2}");
        s.flush();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "{\"a\":1}\n{\"b\":2}\n");
        let _ = std::fs::remove_file(&path);
    }
}
