//! The documented telemetry-name registry.
//!
//! Every counter, gauge, histogram, event, and span name the production
//! pipeline emits is listed here, sorted. The workspace-level
//! `metric_names` audit test runs a real DSE and asserts that every name
//! observed at runtime appears in these lists — so a typo'd dotted name
//! fails CI instead of silently creating a new series — and that the core
//! names are actually exercised. Adding an emit site means adding its name
//! here (and, for user-facing names, documenting it in DESIGN.md).

/// Documented counters.
pub const COUNTERS: &[&str] = &[
    "compiler.variants",
    "dse.accepted",
    "dse.cache.hit",
    "dse.cache.miss",
    "dse.cache.system_hit",
    "dse.cache.system_miss",
    "dse.checkpoint.restore",
    "dse.checkpoint.write",
    "dse.checkpoint.write_us",
    "dse.eval.infeasible",
    "dse.full_schedules",
    "dse.heartbeat.count",
    "dse.intact",
    "dse.invalid",
    "dse.iterations",
    "dse.place.runs",
    "dse.place.slr_crossings",
    "dse.repairs",
    "dse.rewrite.applied",
    "dse.rewrite.compound",
    "dse.rewrite.inferred_additive",
    "dse.rewrite.inferred_attribute",
    "dse.rewrite.inferred_pure",
    "dse.rewrite.inferred_remove_unused",
    "dse.rewrite.inferred_structural",
    "sched.attempts",
    "sched.backtracks",
    "scheduler.repair.dirty_nodes",
    "scheduler.repair.fallback",
    "scheduler.repair.fast",
    "scheduler.repair.scoped",
    "service.jobs.cancelled",
    "service.jobs.completed",
    "service.jobs.failed",
    "service.jobs.submitted",
    "service.store.hits",
    "service.store.lookups",
    "service.store.misses",
    "service.store.publishes",
    "service.store.shared_serves",
    "service.store.warm_entries",
    "sim.analytic.admitted",
    "sim.analytic.pruned",
    "sim.batch.reuse",
    "sim.engine_bw_default",
    "sim.truncated",
];

/// Documented gauges. All heartbeat values are gauges: they are
/// last-value-wins wall-clock rates, registry-only by design (see
/// DESIGN.md §11).
pub const GAUGES: &[&str] = &[
    "dse.heartbeat.accept_rate",
    "dse.heartbeat.cache_hit_rate",
    "dse.heartbeat.eta_seconds",
    "dse.heartbeat.pareto_size",
    "dse.heartbeat.progress",
    "dse.heartbeat.proposals_per_sec",
    "dse.heartbeat.repair_fast_share",
];

/// Documented histograms.
pub const HISTOGRAMS: &[&str] = &["dse.repair_moved"];

/// Documented structured-event types (the `type` field of trace lines,
/// excluding the reserved `span` and `metrics` meta-types).
pub const EVENTS: &[&str] = &[
    "bench.pareto.point",
    "bench.run",
    "compiler.variants",
    "dse.accept",
    "dse.done",
    "dse.eval.infeasible",
    "dse.exchange",
    "dse.invalid",
    "dse.place",
    "dse.propose",
    "dse.reject",
    "dse.repair",
    "dse.stopped",
    "dse.system",
    "sched.fail",
    "sched.placed",
    "sched.repaired",
    "service.job.done",
    "service.job.start",
    "sim.done",
    "sim.engine_bw_default",
    "sim.truncated",
];

/// Documented span names.
pub const SPANS: &[&str] = &[
    "compiler.variants",
    "dse.compile_variants",
    "dse.iteration",
    "dse.run",
    "dse.system",
    "sched.place",
    "sched.repair",
    "sim.run",
];

/// Is `name` a documented counter?
pub fn is_documented_counter(name: &str) -> bool {
    COUNTERS.binary_search(&name).is_ok()
}

/// Is `name` a documented gauge?
pub fn is_documented_gauge(name: &str) -> bool {
    GAUGES.binary_search(&name).is_ok()
}

/// Is `name` a documented histogram?
pub fn is_documented_histogram(name: &str) -> bool {
    HISTOGRAMS.binary_search(&name).is_ok()
}

/// Is `name` a documented event type?
pub fn is_documented_event(name: &str) -> bool {
    EVENTS.binary_search(&name).is_ok()
}

/// Is `name` a documented span name?
pub fn is_documented_span(name: &str) -> bool {
    SPANS.binary_search(&name).is_ok()
}

/// Re-intern a runtime metric name against the documented lists: returns
/// the canonical `&'static str` for a documented counter, gauge, or
/// histogram name, or `None` for anything undocumented. Loaders of
/// persisted registries use this to recover the `'static` names
/// [`crate::Registry`] requires without leaking, and get corruption
/// rejection of unknown names for free.
pub fn intern_metric(name: &str) -> Option<&'static str> {
    for list in [COUNTERS, GAUGES, HISTOGRAMS] {
        if let Ok(i) = list.binary_search(&name) {
            return Some(list[i]);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_sorted_unique(what: &str, list: &[&str]) {
        for w in list.windows(2) {
            assert!(
                w[0] < w[1],
                "{what}: {:?} must sort strictly before {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn lists_are_sorted_and_unique() {
        // binary_search in the is_documented_* helpers requires this.
        assert_sorted_unique("COUNTERS", COUNTERS);
        assert_sorted_unique("GAUGES", GAUGES);
        assert_sorted_unique("HISTOGRAMS", HISTOGRAMS);
        assert_sorted_unique("EVENTS", EVENTS);
        assert_sorted_unique("SPANS", SPANS);
    }

    #[test]
    fn lookup_helpers_agree_with_lists() {
        assert!(is_documented_counter("dse.iterations"));
        assert!(!is_documented_counter("dse.iteration")); // that's a span
        assert!(is_documented_gauge("dse.heartbeat.eta_seconds"));
        assert!(is_documented_histogram("dse.repair_moved"));
        assert!(is_documented_event("dse.propose"));
        assert!(!is_documented_event("span")); // reserved meta-type
        assert!(is_documented_span("sched.place"));
        assert!(!is_documented_span("sched.placed")); // that's an event
    }

    #[test]
    fn intern_metric_returns_canonical_statics() {
        let owned = String::from("dse.cache.hit");
        assert_eq!(intern_metric(&owned), Some("dse.cache.hit"));
        assert_eq!(
            intern_metric("dse.heartbeat.progress"),
            Some("dse.heartbeat.progress")
        );
        assert_eq!(intern_metric("dse.repair_moved"), Some("dse.repair_moved"));
        assert_eq!(
            intern_metric("service.store.hits"),
            Some("service.store.hits")
        );
        assert_eq!(intern_metric("no.such.metric"), None);
        assert_eq!(intern_metric("dse.propose"), None, "events are not metrics");
    }

    #[test]
    fn no_name_is_registered_under_conflicting_metric_kinds() {
        for c in COUNTERS {
            assert!(
                !is_documented_gauge(c) && !is_documented_histogram(c),
                "{c:?} documented as more than one metric kind"
            );
        }
        for g in GAUGES {
            assert!(
                !is_documented_histogram(g),
                "{g:?} documented as more than one metric kind"
            );
        }
    }
}
