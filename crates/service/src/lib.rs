//! DSE-as-a-service: a multi-tenant job server over the OverGen DSE.
//!
//! [`JobServer`] accepts concurrent [`JobRequest`]s (a workload domain
//! plus a [`DseConfig`]) and multiplexes them over a fixed pool of worker
//! threads — plain `std::thread` + `std::sync::mpsc`, matching the
//! workspace's zero-dependency stance (see `dse/src/pool.rs`). All tenants
//! share one persistent [`EvalStore`], so a job exploring a domain another
//! tenant already visited hits its cached evaluations across process and
//! job boundaries.
//!
//! ## Job lifecycle
//!
//! `submit` → `Queued` → (worker picks it up) → `Running` → `Done` /
//! `Failed` / `Cancelled`. `cancel` removes a queued job outright and asks
//! a running one to stop at the next segment boundary via
//! [`StopFlag`] — the engine finalizes a checkpoint (when configured) and
//! returns a partial result with `completed == false`. `wait` blocks on a
//! condvar until the job is terminal; `shutdown` drains the queue, joins
//! the workers, and folds the shared-store counters into the service
//! registry (`service.store.*`).
//!
//! ## Per-job telemetry
//!
//! Every job runs under its own deterministic-clock collector streaming
//! JSONL to `<root>/jobs/<name>/trace.jsonl`, bracketed by
//! `service.job.start` / `service.job.done` events, with the result
//! summary written atomically to `result.json`. Because job traces carry
//! only deterministic fields and store-served artifacts are byte-identical
//! to recomputation, a job's trace and result are byte-for-byte the same
//! for any worker count and any co-tenant schedule (DESIGN.md §13); the
//! workspace `service_determinism` test enforces this differentially.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use overgen_dse::{Dse, DseConfig, DseResult, EvalStore, StopFlag, StoreError, StoreStats};
use overgen_ir::Kernel;
use overgen_telemetry::fs::write_atomic;
use overgen_telemetry::json::Obj;
use overgen_telemetry::{event, install, ClockMode, Collector, FileSink, Registry};

/// How a [`JobServer`] is laid out and sized.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Service root directory; per-job artifacts live under
    /// `<root>/jobs/<name>/` and the shared store under `<root>/store/`.
    pub root: PathBuf,
    /// Worker threads executing jobs. `0` is clamped to 1. Results and
    /// traces are independent of this value.
    pub workers: usize,
    /// Open (and share) the persistent evaluation store. Off = every job
    /// runs with only its in-memory caches.
    pub store: bool,
}

impl ServiceConfig {
    /// A server rooted at `root` with one worker and the store enabled.
    pub fn new(root: impl Into<PathBuf>) -> ServiceConfig {
        ServiceConfig {
            root: root.into(),
            workers: 1,
            store: true,
        }
    }
}

/// One tenant's unit of work: a named workload domain plus the DSE
/// configuration to explore it with.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Unique job name; doubles as the artifact directory name, so only
    /// `[A-Za-z0-9._-]` is accepted.
    pub name: String,
    /// The workload domain.
    pub kernels: Vec<Kernel>,
    /// Exploration configuration. The server injects the shared store and
    /// a cancellation flag; everything else is the tenant's to choose.
    pub config: DseConfig,
}

/// Handle to a submitted job.
pub type JobId = u64;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; `result` has the outcome.
    Done,
    /// The DSE returned an error; `error` has the message.
    Failed,
    /// Cancelled before or during execution.
    Cancelled,
}

impl JobStatus {
    /// Has the job reached a terminal state?
    pub fn terminal(self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running)
    }

    fn tag(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Job names are directory names; this one has characters outside
    /// `[A-Za-z0-9._-]` (or is empty).
    InvalidName(String),
    /// Another job in this server already claimed the name.
    DuplicateName(String),
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::InvalidName(n) => write!(f, "invalid job name {n:?}"),
            SubmitError::DuplicateName(n) => write!(f, "duplicate job name {n:?}"),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why the server could not start.
#[derive(Debug)]
pub enum ServiceError {
    /// The root directory could not be created.
    Io(std::io::Error),
    /// The shared store refused to open (corrupt or incompatible entry).
    Store(StoreError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "service I/O error: {e}"),
            ServiceError::Store(e) => write!(f, "shared store: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> Self {
        ServiceError::Store(e)
    }
}

/// Everything a job accumulates over its lifetime.
struct JobEntry {
    name: String,
    status: JobStatus,
    /// Taken by the worker when the job starts.
    request: Option<JobRequest>,
    result: Option<Arc<DseResult>>,
    error: Option<String>,
    stop: StopFlag,
}

/// State shared between the API surface and the workers.
struct Shared {
    root: PathBuf,
    store: Option<Arc<EvalStore>>,
    jobs: Mutex<BTreeMap<JobId, JobEntry>>,
    /// Notified on every terminal status transition.
    done: Condvar,
    registry: Registry,
}

impl Shared {
    fn counter(&self, name: &'static str) -> overgen_telemetry::Counter {
        self.registry.counter(name)
    }

    /// The single terminal-transition point. Applies `apply` (which must
    /// leave the entry in a terminal status) under the caller's jobs lock,
    /// then performs the terminal accounting — the matching
    /// `service.jobs.*` counter and a `done` broadcast — so every path a
    /// job can end through (worker completion, worker failure,
    /// worker-observed cancellation, queued-job cancellation) accounts
    /// identically. Callers pass their held guard in; the transition and
    /// the status read are atomic, and the lock is dropped before the
    /// counter bump and notify.
    fn finish(
        &self,
        mut jobs: std::sync::MutexGuard<'_, BTreeMap<JobId, JobEntry>>,
        id: JobId,
        apply: impl FnOnce(&mut JobEntry),
    ) {
        let j = jobs.get_mut(&id).expect("finishing job exists");
        apply(j);
        debug_assert!(
            j.status.terminal(),
            "finish() must end in a terminal status"
        );
        let counter = match j.status {
            JobStatus::Done => "service.jobs.completed",
            JobStatus::Failed => "service.jobs.failed",
            _ => "service.jobs.cancelled",
        };
        drop(jobs);
        self.counter(counter).inc();
        self.done.notify_all();
    }
}

/// Final per-job record in a [`ServiceReport`].
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Job id, in submission order.
    pub id: JobId,
    /// Job name.
    pub name: String,
    /// Terminal status.
    pub status: JobStatus,
    /// Best objective, when a result exists.
    pub objective: Option<f64>,
}

/// What `shutdown` returns: every job's terminal state plus the shared
/// store's accounting.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Per-job outcomes in submission order.
    pub jobs: Vec<JobReport>,
    /// Shared-store counters, when the store was enabled.
    pub store: Option<StoreStats>,
}

/// The multi-tenant DSE job server. See the module docs for the
/// lifecycle; all methods are callable from any thread.
pub struct JobServer {
    shared: Arc<Shared>,
    /// `None` once `shutdown` has dropped it to unblock the workers.
    queue: Mutex<Option<Sender<JobId>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    next_id: Mutex<JobId>,
}

impl JobServer {
    /// Start a server: create the root layout, open the shared store
    /// (when enabled), and spawn the worker pool.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] when the directory layout cannot be created,
    /// [`ServiceError::Store`] when the persistent store refuses to load.
    pub fn start(cfg: ServiceConfig) -> Result<JobServer, ServiceError> {
        std::fs::create_dir_all(cfg.root.join("jobs"))?;
        let store = if cfg.store {
            Some(EvalStore::open(cfg.root.join("store"))?)
        } else {
            None
        };
        let shared = Arc::new(Shared {
            root: cfg.root,
            store,
            jobs: Mutex::new(BTreeMap::new()),
            done: Condvar::new(),
            registry: Registry::new(),
        });
        let (tx, rx) = channel::<JobId>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || worker_loop(&shared, &rx))
            })
            .collect();
        Ok(JobServer {
            shared,
            queue: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
            next_id: Mutex::new(0),
        })
    }

    /// The shared evaluation store, when enabled.
    pub fn store(&self) -> Option<&Arc<EvalStore>> {
        self.shared.store.as_ref()
    }

    /// The service-level metrics registry (`service.*` counters).
    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }

    /// Submit a job for execution.
    ///
    /// # Errors
    ///
    /// See [`SubmitError`].
    pub fn submit(&self, req: JobRequest) -> Result<JobId, SubmitError> {
        if req.name.is_empty()
            || !req
                .name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b"._-".contains(&b))
        {
            return Err(SubmitError::InvalidName(req.name));
        }
        let queue = self.queue.lock().unwrap();
        let Some(tx) = queue.as_ref() else {
            return Err(SubmitError::ShuttingDown);
        };
        let mut jobs = self.shared.jobs.lock().unwrap();
        if jobs.values().any(|j| j.name == req.name) {
            return Err(SubmitError::DuplicateName(req.name));
        }
        let mut next = self.next_id.lock().unwrap();
        let id = *next;
        *next += 1;
        jobs.insert(
            id,
            JobEntry {
                name: req.name.clone(),
                status: JobStatus::Queued,
                request: Some(req),
                result: None,
                error: None,
                stop: StopFlag::new(),
            },
        );
        drop(jobs);
        self.shared.counter("service.jobs.submitted").inc();
        tx.send(id).expect("workers outlive the queue");
        Ok(id)
    }

    /// Current status, or `None` for an unknown id.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.shared.jobs.lock().unwrap().get(&id).map(|j| j.status)
    }

    /// The job's result: present for `Done` jobs and for cancelled jobs
    /// that stopped gracefully mid-run (partial, `completed == false`).
    pub fn result(&self, id: JobId) -> Option<Arc<DseResult>> {
        self.shared
            .jobs
            .lock()
            .unwrap()
            .get(&id)
            .and_then(|j| j.result.clone())
    }

    /// The failure message of a `Failed` job.
    pub fn error(&self, id: JobId) -> Option<String> {
        self.shared
            .jobs
            .lock()
            .unwrap()
            .get(&id)
            .and_then(|j| j.error.clone())
    }

    /// Cancel a job. A queued job is marked `Cancelled` immediately (the
    /// worker skips it); a running job is asked to stop at the next
    /// segment boundary. Returns `false` for unknown or already-terminal
    /// jobs.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut jobs = self.shared.jobs.lock().unwrap();
        let Some(j) = jobs.get_mut(&id) else {
            return false;
        };
        match j.status {
            JobStatus::Queued => {
                // The transition happens under the lock we already hold, so
                // a worker dequeuing the id concurrently sees `Cancelled`
                // (not `Queued`) and skips it — the accounting below is the
                // only one this job gets.
                self.shared
                    .finish(jobs, id, |j| j.status = JobStatus::Cancelled);
                true
            }
            JobStatus::Running => {
                // The worker observes the raised flag at the next segment
                // boundary and performs the terminal accounting through the
                // same `finish` path in `run_job`.
                j.stop.raise();
                true
            }
            _ => false,
        }
    }

    /// Block until the job is terminal and return its final status.
    /// Returns `None` for an unknown id.
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        let mut jobs = self.shared.jobs.lock().unwrap();
        loop {
            let status = jobs.get(&id)?.status;
            if status.terminal() {
                return Some(status);
            }
            jobs = self.shared.done.wait(jobs).unwrap();
        }
    }

    /// Stop accepting work, drain the queue, join every worker, fold the
    /// store counters into the service registry, and report.
    pub fn shutdown(self) -> ServiceReport {
        // Dropping the sender makes every worker's `recv` fail once the
        // queue drains.
        *self.queue.lock().unwrap() = None;
        for w in self.workers.lock().unwrap().drain(..) {
            let _ = w.join();
        }
        if let Some(st) = &self.shared.store {
            let s = st.stats();
            for (name, v) in [
                ("service.store.lookups", s.lookups),
                ("service.store.hits", s.hits),
                ("service.store.misses", s.misses),
                ("service.store.publishes", s.publishes),
                ("service.store.shared_serves", s.shared_serves),
                ("service.store.warm_entries", s.warm_entries),
            ] {
                self.shared.counter(name).add(v);
            }
        }
        let jobs = self.shared.jobs.lock().unwrap();
        ServiceReport {
            jobs: jobs
                .iter()
                .map(|(id, j)| JobReport {
                    id: *id,
                    name: j.name.clone(),
                    status: j.status,
                    objective: j.result.as_ref().map(|r| r.objective),
                })
                .collect(),
            store: self.shared.store.as_ref().map(|s| s.stats()),
        }
    }
}

/// One worker: pull job ids until the queue closes.
fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<JobId>>) {
    loop {
        // Hold the receiver lock only for the dequeue itself.
        let id = match rx.lock().unwrap().recv() {
            Ok(id) => id,
            Err(_) => return,
        };
        run_job(shared, id);
    }
}

/// Execute one job end to end; never panics the worker on job failure.
fn run_job(shared: &Shared, id: JobId) {
    let (req, stop) = {
        let mut jobs = shared.jobs.lock().unwrap();
        let j = jobs.get_mut(&id).expect("queued job exists");
        if j.status != JobStatus::Queued {
            return; // cancelled while queued
        }
        j.status = JobStatus::Running;
        (
            j.request.take().expect("queued job has a request"),
            j.stop.clone(),
        )
    };

    let dir = shared.root.join("jobs").join(&req.name);
    let outcome = execute(shared, &dir, req, stop.clone());

    let jobs = shared.jobs.lock().unwrap();
    shared.finish(jobs, id, |j| match outcome {
        Ok(result) => {
            j.status = if stop.raised() && !result.completed {
                JobStatus::Cancelled
            } else {
                JobStatus::Done
            };
            j.result = Some(result);
        }
        Err(msg) => {
            j.status = JobStatus::Failed;
            j.error = Some(msg);
        }
    });
}

/// Run the DSE under a per-job deterministic collector and persist the
/// job artifacts. I/O problems fail the job rather than the worker.
fn execute(
    shared: &Shared,
    dir: &Path,
    req: JobRequest,
    stop: StopFlag,
) -> Result<Arc<DseResult>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create job dir: {e}"))?;
    let sink = FileSink::create(dir.join("trace.jsonl"))
        .map_err(|e| format!("cannot create job trace: {e}"))?;
    let collector = Collector::new(sink, ClockMode::Deterministic);
    let _guard = install(collector.clone());

    let mut config = req.config;
    config.store = shared.store.clone();
    config.stop = Some(stop);
    let workloads = config.iterations; // deterministic fields only
    event!(
        "service.job.start",
        job = req.name.as_str(),
        kernels = req.kernels.len() as u64,
        iterations = workloads as u64,
    );
    let run = Dse::new(req.kernels, config).run();
    let (completed, objective) = match &run {
        Ok(r) => (r.completed, r.objective),
        Err(_) => (false, f64::NAN),
    };
    event!(
        "service.job.done",
        job = req.name.as_str(),
        ok = run.is_ok(),
        completed = completed,
        objective = objective,
    );
    collector.flush();
    // The registry snapshot goes to a side file, NOT into trace.jsonl:
    // `dse.cache.system_*` counts *work actually performed*, which a warm
    // store legitimately elides, so it is diagnostic — outside the
    // byte-identity surface (DESIGN.md §13). Everything event/span-shaped
    // is replayed from captured artifacts and stays deterministic.
    let mut metrics = collector.registry().snapshot_json();
    metrics.push('\n');
    write_atomic(dir.join("metrics.json"), metrics.as_bytes())
        .map_err(|e| format!("cannot write job metrics: {e}"))?;

    let result = run.map_err(|e| e.to_string())?;
    write_atomic(
        dir.join("result.json"),
        result_json(&req.name, &result).as_bytes(),
    )
    .map_err(|e| format!("cannot write job result: {e}"))?;
    Ok(Arc::new(result))
}

/// The deterministic per-job result summary persisted as `result.json`.
fn result_json(name: &str, r: &DseResult) -> String {
    let mut s = Obj::new()
        .str("job", name)
        .bool("completed", r.completed)
        .f64("objective", r.objective)
        .f64("dse_hours", r.dse_hours)
        .u64("pareto_points", r.pareto.points().len() as u64)
        .u64("iterations", r.stats.iterations as u64)
        .u64("accepted", r.stats.accepted as u64)
        .u64("cache_hits", r.stats.cache_hits as u64)
        .u64("cache_misses", r.stats.cache_misses as u64)
        .finish();
    s.push('\n');
    s
}

/// The status string written into job listings; stable API for clients.
pub fn status_tag(status: JobStatus) -> &'static str {
    status.tag()
}
