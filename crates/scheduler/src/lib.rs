//! The spatial scheduler: maps memory-enhanced dataflow graphs onto
//! architecture description graphs.
//!
//! Responsibilities (paper §II-A, §IV-B "mDFG Scheduling"):
//!
//! - map **array nodes** to memory stream engines under capacity, pattern
//!   (indirect), and connectivity constraints;
//! - bind **streams** to synchronization ports fed by / draining to the
//!   right engine;
//! - place **instructions** onto capability-compatible processing elements
//!   (dedicated execution: one instruction per PE);
//! - **route** every dataflow edge through the switch fabric under
//!   exclusive-link constraints (fanout of the same value may share links);
//! - score the result with the §V-C performance model, including a
//!   pipeline-balance penalty when operand delays exceed PE delay-FIFOs.
//!
//! [`repair`] revalidates a schedule against a *mutated* ADG and re-places
//! only what broke — the cheap path the DSE prefers (§V-A "schedule
//! repair").
//!
//! # Example
//!
//! ```
//! use overgen_adg::{mesh, MeshSpec, SysAdg, SystemParams};
//! use overgen_compiler::{lower, LowerChoices};
//! use overgen_ir::{expr, DataType, KernelBuilder, Suite};
//! use overgen_scheduler::schedule;
//!
//! let k = KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
//!     .array_input("a", 64).array_input("b", 64).array_output("c", 64)
//!     .loop_const("i", 64)
//!     .assign("c", expr::idx("i"),
//!             expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")))
//!     .build().unwrap();
//! let mdfg = lower(&k, 0, &LowerChoices { unroll: 1, ..Default::default() }).unwrap();
//! let sys = SysAdg::new(mesh(&MeshSpec::default()), SystemParams::default());
//! let sched = schedule(&mdfg, &sys, None)?;
//! assert!(sched.est.ipc > 0.0);
//! # Ok::<(), overgen_scheduler::ScheduleError>(())
//! ```

mod adj;
mod footprint;
mod place;
mod repair;
mod types;

pub use footprint::ScheduleFootprint;
pub use place::schedule;
pub use repair::{repair, repair_with, RepairOptions, RepairOutcome, RepairScope};
pub use types::{Schedule, ScheduleError};
