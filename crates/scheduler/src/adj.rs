//! Dense bitset adjacency over an [`Adg`] for the placer/repair hot loops.
//!
//! The placer and the repair classifier probe edge existence and node kinds
//! far more often than they enumerate neighbours: every BFS step checks the
//! one-value-per-link rule, every reused route re-validates each hop, and
//! classification walks every prior route edge. [`Adg::has_edge`] scans an
//! adjacency `Vec` and [`Adg::kind`] chases the slot map; both are O(1) here
//! — one bit test and one indexed load against side tables built once per
//! placement from the (immutable for its duration) graph.

use overgen_adg::{Adg, AdgNode, NodeId, NodeKind};

/// Bitset adjacency matrix plus a flat node-kind table.
pub(crate) struct AdjBits {
    /// Slots covered (max raw id + 1); rows/columns are raw slot indices.
    n: usize,
    /// Words per adjacency row.
    row_words: usize,
    /// Row-major adjacency bits: bit `b` of row `a` = edge `a -> b`.
    bits: Vec<u64>,
    /// Kind per slot (`None` for deleted slots).
    kinds: Vec<Option<NodeKind>>,
}

impl AdjBits {
    pub fn new(adg: &Adg) -> Self {
        let n = adg.nodes().map(|(id, _)| id.index() + 1).max().unwrap_or(0);
        let row_words = n.div_ceil(64);
        let mut bits = vec![0u64; n * row_words];
        let mut kinds = vec![None; n];
        for (id, node) in adg.nodes() {
            kinds[id.index()] = Some(node.kind());
        }
        for (a, b) in adg.edges() {
            let (ai, bi) = (a.index(), b.index());
            bits[ai * row_words + bi / 64] |= 1u64 << (bi % 64);
        }
        AdjBits {
            n,
            row_words,
            bits,
            kinds,
        }
    }

    #[inline]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        let (ai, bi) = (a.index(), b.index());
        if ai >= self.n || bi >= self.n {
            return false;
        }
        self.bits[ai * self.row_words + bi / 64] & (1u64 << (bi % 64)) != 0
    }

    #[inline]
    pub fn kind(&self, id: NodeId) -> Option<NodeKind> {
        self.kinds.get(id.index()).copied().flatten()
    }

    #[inline]
    pub fn is_switch(&self, id: NodeId) -> bool {
        self.kind(id) == Some(NodeKind::Switch)
    }

    /// One-value-per-link rule: only links *into* a switch whose source is
    /// not an input port are exclusive (mirrors `Placer::exclusive_link`).
    #[inline]
    pub fn exclusive_link(&self, a: NodeId, b: NodeId) -> bool {
        self.kind(a) != Some(NodeKind::InPort) && self.kind(b) == Some(NodeKind::Switch)
    }
}

/// Build the per-spad byte budgets the placer starts from.
pub(crate) fn spad_budgets(adg: &Adg) -> std::collections::BTreeMap<NodeId, i64> {
    adg.nodes()
        .filter_map(|(id, n)| match n {
            AdgNode::Spad(s) => Some((id, i64::from(s.capacity_kb) * 1024)),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_adg::{mesh, MeshSpec};

    #[test]
    fn matches_adg_edges_and_kinds() {
        let adg = mesh(&MeshSpec::general());
        let adj = AdjBits::new(&adg);
        let ids: Vec<NodeId> = adg.nodes().map(|(id, _)| id).collect();
        for &a in &ids {
            for &b in &ids {
                assert_eq!(adj.has_edge(a, b), adg.has_edge(a, b));
            }
            assert_eq!(adj.kind(a), adg.kind(a));
        }
    }

    #[test]
    fn survives_node_deletion_holes() {
        let mut adg = mesh(&MeshSpec::default());
        let victim = adg.nodes_of_kind(NodeKind::Switch)[0];
        adg.remove_node(victim);
        let adj = AdjBits::new(&adg);
        assert_eq!(adj.kind(victim), None);
        for (a, b) in adg.edges() {
            assert!(adj.has_edge(a, b));
        }
        assert!(!adj.has_edge(victim, victim));
    }
}
