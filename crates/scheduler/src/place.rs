//! The placement + routing algorithm.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

use overgen_adg::{Adg, AdgNode, NodeId, NodeKind, SysAdg};
use overgen_mdfg::{Mdfg, MdfgNode, MdfgNodeId, MdfgNodeKind, MemPref, StreamPattern};
use overgen_model::{estimate_ipc, Placement};
use overgen_telemetry::{event, span};

use crate::adj::{spad_budgets, AdjBits};
use crate::types::{Schedule, ScheduleError};

/// Maximum placement candidates tried per instruction before giving up.
const MAX_CANDIDATES: usize = 32;

/// Schedule an mDFG onto a system ADG.
///
/// `prior` seeds placement: nodes whose previous hardware target is still
/// compatible are placed there first — and their previous routes are reused
/// verbatim when still valid — which keeps repairs cheap and stable.
///
/// # Errors
///
/// Returns a [`ScheduleError`] when any node cannot be placed or any edge
/// cannot be routed; the DSE interprets this as "variant does not fit".
pub fn schedule(
    mdfg: &Mdfg,
    sys_adg: &SysAdg,
    prior: Option<&Schedule>,
) -> Result<Schedule, ScheduleError> {
    let _span = span!(
        "sched.place",
        mdfg = mdfg.name(),
        variant = mdfg.variant(),
        seeded = prior.is_some(),
    );
    let result = Placer::new(mdfg, sys_adg, prior, false).run();
    if let Err(e) = &result {
        event!(
            "sched.fail",
            mdfg = mdfg.name(),
            variant = mdfg.variant(),
            reason = format!("{e}"),
        );
    }
    result
}

/// Full placement without any telemetry output.
///
/// The repair engine's verification mode (`OVERGEN_REPAIR=0`) runs the full
/// placer where the fast path would have reconstructed the schedule from the
/// prior mapping; the run must be silent so traces stay byte-identical
/// between the two modes.
pub(crate) fn place_quiet(
    mdfg: &Mdfg,
    sys_adg: &SysAdg,
    prior: Option<&Schedule>,
) -> Result<Schedule, ScheduleError> {
    Placer::new(mdfg, sys_adg, prior, true).run()
}

// ---- mDFG structure helpers (shared with repair classification) -----------

/// An input stream that only feeds other input streams is an index stream
/// consumed inside the engine (no fabric port).
pub(crate) fn is_index_stream(mdfg: &Mdfg, sid: MdfgNodeId) -> bool {
    let succs = mdfg.succs(sid);
    !succs.is_empty()
        && succs
            .iter()
            .all(|s| mdfg.node(*s).map(MdfgNode::kind) == Some(MdfgNodeKind::InputStream))
}

/// Recurrence input stream: fed by an output stream.
pub(crate) fn is_rec_input(mdfg: &Mdfg, sid: MdfgNodeId) -> bool {
    mdfg.preds(sid)
        .iter()
        .any(|p| mdfg.node(*p).map(MdfgNode::kind) == Some(MdfgNodeKind::OutputStream))
}

/// Output stream feeding a recurrence input stream.
pub(crate) fn feeds_rec_input(mdfg: &Mdfg, sid: MdfgNodeId) -> bool {
    mdfg.succs(sid)
        .iter()
        .any(|d| mdfg.node(*d).map(MdfgNode::kind) == Some(MdfgNodeKind::InputStream))
}

/// The array node a stream reads from / writes to.
pub(crate) fn array_of_stream(mdfg: &Mdfg, sid: MdfgNodeId) -> Option<MdfgNodeId> {
    let s = mdfg.node(sid)?.as_stream()?;
    if s.is_write {
        mdfg.succs(sid)
            .iter()
            .find(|d| mdfg.node(**d).map(MdfgNode::kind) == Some(MdfgNodeKind::Array))
            .copied()
    } else {
        mdfg.preds(sid)
            .iter()
            .find(|p| mdfg.node(**p).map(MdfgNode::kind) == Some(MdfgNodeKind::Array))
            .copied()
    }
}

/// Engine that produces/consumes a stream's data, given the array
/// assignments decided so far.
pub(crate) fn engine_of_stream(
    mdfg: &Mdfg,
    adg: &Adg,
    assignment: &BTreeMap<MdfgNodeId, NodeId>,
    sid: MdfgNodeId,
) -> Option<NodeId> {
    // Recurrence streams use the recurrence engine.
    let s = mdfg.node(sid)?.as_stream()?;
    if s.array.is_empty() {
        return adg.nodes_of_kind(NodeKind::Gen).into_iter().next();
    }
    if !s.is_write && is_rec_input(mdfg, sid) || s.is_write && feeds_rec_input(mdfg, sid) {
        return adg.nodes_of_kind(NodeKind::Rec).into_iter().next();
    }
    // Otherwise: the engine its array was assigned to.
    let aid = array_of_stream(mdfg, sid)?;
    assignment.get(&aid).copied()
}

/// Whether any stream of the array uses an indirect access pattern.
pub(crate) fn array_needs_indirect(mdfg: &Mdfg, aid: MdfgNodeId) -> bool {
    mdfg.succs(aid)
        .iter()
        .chain(mdfg.preds(aid).iter())
        .any(|sid| {
            mdfg.node(*sid)
                .and_then(MdfgNode::as_stream)
                .is_some_and(|s| s.pattern == StreamPattern::Indirect)
        })
}

// ---- scoring --------------------------------------------------------------

/// Score a complete mapping into a [`Schedule`].
///
/// This is the single scoring path: the placer calls it at the end of a full
/// placement and the repair fast path calls it on a verified prior mapping,
/// so both produce bit-identical estimates for the same mapping.
pub(crate) fn score_mapping(
    mdfg: &Mdfg,
    sys: &SysAdg,
    assignment: BTreeMap<MdfgNodeId, NodeId>,
    stream_engines: BTreeMap<MdfgNodeId, NodeId>,
    routes: BTreeMap<(MdfgNodeId, MdfgNodeId), Vec<NodeId>>,
) -> Schedule {
    let adg = &sys.adg;
    // Pipeline balance: operand route-length mismatch beyond the PE's
    // delay FIFO creates bubbles (§V-B); port width shortfalls stretch
    // firings over multiple cycles.
    let mut penalty = 1.0f64;
    for (iid, n) in mdfg.nodes() {
        if n.kind() != MdfgNodeKind::Inst {
            continue;
        }
        let lens: Vec<usize> = mdfg
            .preds(iid)
            .iter()
            .filter_map(|p| routes.get(&(*p, iid)).map(Vec::len))
            .collect();
        if lens.len() >= 2 {
            let diff = lens.iter().max().unwrap() - lens.iter().min().unwrap();
            let depth = assignment
                .get(&iid)
                .and_then(|a| adg.node(*a))
                .and_then(AdgNode::as_pe)
                .map(|pe| usize::from(pe.delay_fifo_depth))
                .unwrap_or(0);
            if diff > depth {
                penalty *= 1.0 / (1.0 + 0.25 * (diff - depth) as f64);
            }
        }
    }
    for (sid, n) in mdfg.nodes() {
        if let Some(s) = n.as_stream() {
            if let Some(port) = assignment.get(&sid) {
                let width = match adg.node(*port) {
                    Some(AdgNode::InPort(p)) => u64::from(p.width_bytes),
                    Some(AdgNode::OutPort(p)) => u64::from(p.width_bytes),
                    _ => continue,
                };
                if width < s.bytes_per_firing {
                    penalty *= width as f64 / s.bytes_per_firing as f64;
                }
            }
        }
    }

    // Per-engine bandwidth: each engine issues one request per cycle,
    // so the summed steady-state demand of its streams must fit its
    // bandwidth; oversubscription stretches the firing interval.
    {
        let mut demand: BTreeMap<NodeId, f64> = BTreeMap::new();
        for (sid, n) in mdfg.nodes() {
            if let Some(s) = n.as_stream() {
                if let Some(engine) = stream_engines.get(&sid) {
                    *demand.entry(*engine).or_default() +=
                        s.bytes_per_firing as f64 / s.reuse.stationary.max(1.0);
                }
            }
        }
        for (engine, d) in demand {
            let bw = adg
                .node(engine)
                .and_then(AdgNode::engine_bw)
                .map(f64::from)
                .unwrap_or(8.0);
            if d > bw {
                penalty *= bw / d;
            }
        }
    }

    // Scratchpad placement for the performance model.
    let mut placement = Placement::default();
    for (id, n) in mdfg.nodes() {
        if let MdfgNode::Array(a) = n {
            if let Some(engine) = assignment.get(&id) {
                if matches!(adg.node(*engine), Some(AdgNode::Spad(_))) {
                    placement.spad_arrays.insert(a.name.clone());
                }
            }
        }
    }
    let spad_bw: f64 = adg
        .nodes()
        .filter_map(|(_, n)| n.as_spad().map(|s| f64::from(s.bw_bytes)))
        .sum();
    let mut est = estimate_ipc(mdfg, &sys.sys, spad_bw, &placement);
    est.ipc *= penalty;
    est.per_tile_ipc *= penalty;

    Schedule {
        mdfg_name: mdfg.name().to_string(),
        variant: mdfg.variant(),
        assignment,
        stream_engines,
        routes,
        placement,
        est,
        balance_penalty: penalty,
    }
}

struct Placer<'a> {
    mdfg: &'a Mdfg,
    adg: &'a Adg,
    sys: &'a SysAdg,
    prior: Option<&'a Schedule>,
    /// Bitset adjacency + kind table for the routing hot loop.
    adj: AdjBits,
    assignment: BTreeMap<MdfgNodeId, NodeId>,
    routes: BTreeMap<(MdfgNodeId, MdfgNodeId), Vec<NodeId>>,
    stream_engines: BTreeMap<MdfgNodeId, NodeId>,
    pe_used: BTreeSet<NodeId>,
    port_used: BTreeSet<NodeId>,
    spad_left: BTreeMap<NodeId, i64>,
    /// link -> value source currently carried (fanout of one value shares).
    link_use: BTreeMap<(NodeId, NodeId), MdfgNodeId>,
    /// Hop-distance maps memoized per source for candidate ordering.
    dist_cache: BTreeMap<NodeId, Rc<BTreeMap<NodeId, usize>>>,
    /// Placement candidates tried for instructions (telemetry).
    attempts: u64,
    /// Candidates abandoned after a routing failure (telemetry).
    backtracks: u64,
    /// Suppress all counters/events (repair verification mode).
    quiet: bool,
}

impl<'a> Placer<'a> {
    fn new(mdfg: &'a Mdfg, sys: &'a SysAdg, prior: Option<&'a Schedule>, quiet: bool) -> Self {
        let adg = &sys.adg;
        Placer {
            mdfg,
            adg,
            sys,
            prior,
            adj: AdjBits::new(adg),
            assignment: BTreeMap::new(),
            routes: BTreeMap::new(),
            stream_engines: BTreeMap::new(),
            pe_used: BTreeSet::new(),
            port_used: BTreeSet::new(),
            spad_left: spad_budgets(adg),
            link_use: BTreeMap::new(),
            dist_cache: BTreeMap::new(),
            attempts: 0,
            backtracks: 0,
            quiet,
        }
    }

    fn prior_target(&self, node: MdfgNodeId) -> Option<NodeId> {
        self.prior
            .and_then(|p| p.assignment.get(&node).copied())
            .filter(|id| self.adg.contains(*id))
    }

    fn run(mut self) -> Result<Schedule, ScheduleError> {
        self.place_arrays()?;
        self.place_streams()?;
        self.place_insts_and_route()?;
        self.route_outputs()?;
        if !self.quiet {
            if let Some(c) = overgen_telemetry::current() {
                c.registry().counter("sched.attempts").add(self.attempts);
                c.registry()
                    .counter("sched.backtracks")
                    .add(self.backtracks);
            }
            event!(
                "sched.placed",
                mdfg = self.mdfg.name(),
                variant = self.mdfg.variant(),
                attempts = self.attempts,
                backtracks = self.backtracks,
            );
        }
        Ok(self.finish())
    }

    // ---- arrays -> memory engines -------------------------------------

    fn place_arrays(&mut self) -> Result<(), ScheduleError> {
        // Gather array info: (benefit, id, size, pref, indirect, written).
        let mut arrays: Vec<(f64, MdfgNodeId)> = Vec::new();
        for (id, n) in self.mdfg.nodes() {
            if let MdfgNode::Array(_) = n {
                let benefit = self
                    .mdfg
                    .succs(id)
                    .iter()
                    .filter_map(|s| self.mdfg.node(*s).and_then(MdfgNode::as_stream))
                    .map(|s| s.reuse.scratchpad_benefit())
                    .fold(1.0f64, f64::max);
                arrays.push((benefit, id));
            }
        }
        // Highest scratchpad benefit first ("reuse information can help
        // determine which array node should be mapped to a scratchpad").
        arrays.sort_by(|a, b| b.0.total_cmp(&a.0));

        let dmas = self.adg.nodes_of_kind(NodeKind::Dma);
        for (_benefit, aid) in arrays {
            let (name, size, pref) = match self.mdfg.node(aid) {
                Some(MdfgNode::Array(a)) => (a.name.clone(), a.size_bytes, a.pref),
                _ => continue,
            };
            let needs_indirect = array_needs_indirect(self.mdfg, aid);

            // Prior target first.
            if let Some(t) = self.prior_target(aid) {
                if self.try_assign_array(aid, t, size, needs_indirect) {
                    continue;
                }
            }
            let mut placed = false;
            if pref != MemPref::PreferDram {
                // Least-loaded compatible scratchpad.
                let mut spads: Vec<NodeId> = self.spad_left.keys().copied().collect();
                spads.sort_by_key(|id| std::cmp::Reverse(self.spad_left[id]));
                for sp in spads {
                    if self.try_assign_array(aid, sp, size, needs_indirect) {
                        placed = true;
                        break;
                    }
                }
            }
            if !placed {
                for &dma in &dmas {
                    if self.try_assign_array(aid, dma, size, needs_indirect) {
                        placed = true;
                        break;
                    }
                }
            }
            if !placed {
                // Last resort: any scratchpad even for PreferDram arrays.
                let mut spads: Vec<NodeId> = self.spad_left.keys().copied().collect();
                spads.sort_by_key(|id| std::cmp::Reverse(self.spad_left[id]));
                for sp in spads {
                    if self.try_assign_array(aid, sp, size, needs_indirect) {
                        placed = true;
                        break;
                    }
                }
            }
            if !placed {
                return Err(ScheduleError::SpadCapacity { array: name });
            }
        }
        Ok(())
    }

    fn try_assign_array(
        &mut self,
        aid: MdfgNodeId,
        engine: NodeId,
        size: u64,
        needs_indirect: bool,
    ) -> bool {
        match self.adg.node(engine) {
            Some(AdgNode::Spad(sp)) => {
                if needs_indirect && !sp.indirect {
                    return false;
                }
                let left = self.spad_left.get_mut(&engine).expect("spad tracked");
                if *left < size as i64 {
                    return false;
                }
                *left -= size as i64;
                self.assignment.insert(aid, engine);
                true
            }
            Some(AdgNode::Dma(_)) => {
                // Indirect DMA requires reordering hardware; our DMA model
                // always includes the ROB (§VI-C), so indirect is fine.
                self.assignment.insert(aid, engine);
                true
            }
            _ => false,
        }
    }

    // ---- streams -> ports ----------------------------------------------

    fn place_streams(&mut self) -> Result<(), ScheduleError> {
        for (sid, n) in self.mdfg.nodes() {
            match n.kind() {
                MdfgNodeKind::InputStream => {
                    if is_index_stream(self.mdfg, sid) {
                        // Consumed inside the engine: bind to the engine of
                        // its own array (bandwidth accounted by the model).
                        let aid = array_of_stream(self.mdfg, sid).ok_or_else(|| {
                            ScheduleError::NoCandidate {
                                node: sid,
                                requirement: "index stream with an array".into(),
                            }
                        })?;
                        let engine = self.assignment.get(&aid).copied().ok_or(
                            ScheduleError::NoCandidate {
                                node: sid,
                                requirement: "engine for index array".into(),
                            },
                        )?;
                        self.assignment.insert(sid, engine);
                        self.stream_engines.insert(sid, engine);
                        continue;
                    }
                    let s = n.as_stream().expect("input stream");
                    let engine = engine_of_stream(self.mdfg, self.adg, &self.assignment, sid)
                        .ok_or_else(|| ScheduleError::NoCandidate {
                            node: sid,
                            requirement: format!(
                                "a {} engine",
                                if s.array.is_empty() {
                                    "generate"
                                } else {
                                    "memory"
                                }
                            ),
                        })?;
                    self.bind_in_port(sid, engine)?;
                }
                MdfgNodeKind::OutputStream => {
                    let engine = engine_of_stream(self.mdfg, self.adg, &self.assignment, sid)
                        .ok_or_else(|| ScheduleError::NoCandidate {
                            node: sid,
                            requirement: "a memory/recurrence engine".into(),
                        })?;
                    self.bind_out_port(sid, engine)?;
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn bind_in_port(&mut self, sid: MdfgNodeId, engine: NodeId) -> Result<(), ScheduleError> {
        let s = self
            .mdfg
            .node(sid)
            .and_then(MdfgNode::as_stream)
            .expect("stream");
        let mut candidates: Vec<NodeId> = self
            .adg
            .succs(engine)
            .iter()
            .copied()
            .filter(|p| {
                !self.port_used.contains(p)
                    && match self.adg.node(*p) {
                        Some(AdgNode::InPort(ip)) => !s.variable_tc || ip.stream_state,
                        _ => false,
                    }
            })
            .collect();
        // Narrowest adequate port first (save wide ports for wide streams);
        // prior target takes precedence.
        candidates.sort_by_key(|p| match self.adg.node(*p) {
            Some(AdgNode::InPort(ip)) => {
                let w = u64::from(ip.width_bytes);
                let adequate = w >= s.bytes_per_firing;
                (!adequate as u64, if adequate { w } else { u64::MAX - w })
            }
            _ => (1, u64::MAX),
        });
        if let Some(t) = self.prior_target(sid) {
            if candidates.contains(&t) {
                candidates.retain(|c| *c != t);
                candidates.insert(0, t);
            }
        }
        let port = candidates
            .into_iter()
            .next()
            .ok_or_else(|| ScheduleError::NoCandidate {
                node: sid,
                requirement: "a free input port fed by the stream's engine".into(),
            })?;
        self.port_used.insert(port);
        self.assignment.insert(sid, port);
        self.stream_engines.insert(sid, engine);
        Ok(())
    }

    fn bind_out_port(&mut self, sid: MdfgNodeId, engine: NodeId) -> Result<(), ScheduleError> {
        let s = self
            .mdfg
            .node(sid)
            .and_then(MdfgNode::as_stream)
            .expect("stream");
        let mut candidates: Vec<NodeId> = self
            .adg
            .preds(engine)
            .iter()
            .copied()
            .filter(|p| {
                !self.port_used.contains(p)
                    && matches!(self.adg.node(*p), Some(AdgNode::OutPort(_)))
            })
            .collect();
        candidates.sort_by_key(|p| match self.adg.node(*p) {
            Some(AdgNode::OutPort(op)) => {
                let w = u64::from(op.width_bytes);
                let adequate = w >= s.bytes_per_firing;
                (!adequate as u64, if adequate { w } else { u64::MAX - w })
            }
            _ => (1, u64::MAX),
        });
        if let Some(t) = self.prior_target(sid) {
            if candidates.contains(&t) {
                candidates.retain(|c| *c != t);
                candidates.insert(0, t);
            }
        }
        let port = candidates
            .into_iter()
            .next()
            .ok_or_else(|| ScheduleError::NoCandidate {
                node: sid,
                requirement: "a free output port draining to the stream's engine".into(),
            })?;
        self.port_used.insert(port);
        self.assignment.insert(sid, port);
        self.stream_engines.insert(sid, engine);
        Ok(())
    }

    // ---- instructions -> PEs, with routing ------------------------------

    fn place_insts_and_route(&mut self) -> Result<(), ScheduleError> {
        // Topological order over instruction nodes.
        let insts = self.topo_insts();
        for iid in insts {
            let inst = self
                .mdfg
                .node(iid)
                .and_then(MdfgNode::as_inst)
                .copied()
                .expect("inst");
            // Fabric predecessors already placed (streams or earlier insts).
            let placed_preds: Vec<(MdfgNodeId, NodeId)> = self
                .mdfg
                .preds(iid)
                .iter()
                .filter_map(|p| self.assignment.get(p).map(|a| (*p, *a)))
                .collect();

            // Fast path: try the prior target before enumerating and
            // distance-sorting candidates. During repair most instructions
            // keep their PE and reuse their routes, so the whole candidate
            // machinery below only runs for the dirty region.
            let mut placed = false;
            let mut tried_prior: Option<NodeId> = None;
            if let Some(t) = self.prior_target(iid) {
                let free_and_compatible = !self.pe_used.contains(&t)
                    && self
                        .adg
                        .node(t)
                        .and_then(AdgNode::as_pe)
                        .is_some_and(|pe| pe.supports(inst.op, inst.dtype));
                if free_and_compatible {
                    tried_prior = Some(t);
                    placed = self.try_place_inst_at(iid, t, &placed_preds);
                }
            }

            if !placed {
                let mut candidates: Vec<NodeId> = self
                    .adg
                    .nodes()
                    .filter(|(id, n)| {
                        !self.pe_used.contains(id)
                            && n.as_pe().is_some_and(|pe| pe.supports(inst.op, inst.dtype))
                    })
                    .map(|(id, _)| id)
                    .collect();
                if candidates.is_empty() && tried_prior.is_none() {
                    return Err(ScheduleError::NoCandidate {
                        node: iid,
                        requirement: format!("a free PE with {}.{}", inst.op, inst.dtype),
                    });
                }
                // Order by closeness to placed predecessors.
                let dist_maps: Vec<Rc<BTreeMap<NodeId, usize>>> = placed_preds
                    .iter()
                    .map(|(_, a)| self.distances_from(*a))
                    .collect();
                candidates.sort_by_key(|c| {
                    dist_maps
                        .iter()
                        .map(|m| m.get(c).copied().unwrap_or(1_000))
                        .sum::<usize>()
                });
                let budget = MAX_CANDIDATES - usize::from(tried_prior.is_some());
                for cand in candidates
                    .into_iter()
                    .filter(|c| Some(*c) != tried_prior)
                    .take(budget)
                {
                    if self.try_place_inst_at(iid, cand, &placed_preds) {
                        placed = true;
                        break;
                    }
                }
            }
            if !placed {
                return Err(ScheduleError::NoRoute {
                    edge: (placed_preds.first().map(|(p, _)| *p).unwrap_or(iid), iid),
                });
            }
        }
        Ok(())
    }

    /// Try one PE candidate for an instruction: route all placed-pred edges
    /// to it, committing as we go; on failure undo exactly the links and
    /// routes this attempt claimed (no snapshot of the whole link table).
    fn try_place_inst_at(
        &mut self,
        iid: MdfgNodeId,
        cand: NodeId,
        placed_preds: &[(MdfgNodeId, NodeId)],
    ) -> bool {
        self.attempts += 1;
        let mut committed: Vec<(MdfgNodeId, MdfgNodeId)> = Vec::new();
        let mut claimed: Vec<(NodeId, NodeId)> = Vec::new();
        for (pid, padg) in placed_preds {
            // Commit each pred route immediately so later preds see the
            // links it claimed.
            let path = self
                .reusable_prior_route((*pid, iid), *pid, *padg, cand)
                .or_else(|| self.route(*pid, *padg, cand));
            match path {
                Some(path) => {
                    self.commit_route_logged((*pid, iid), path, &mut claimed);
                    committed.push((*pid, iid));
                }
                None => {
                    self.backtracks += 1;
                    for link in claimed {
                        self.link_use.remove(&link);
                    }
                    for edge in committed {
                        self.routes.remove(&edge);
                    }
                    return false;
                }
            }
        }
        self.pe_used.insert(cand);
        self.assignment.insert(iid, cand);
        true
    }

    fn topo_insts(&self) -> Vec<MdfgNodeId> {
        let mut indeg: BTreeMap<MdfgNodeId, usize> = BTreeMap::new();
        for (id, n) in self.mdfg.nodes() {
            if n.kind() == MdfgNodeKind::Inst {
                let d = self
                    .mdfg
                    .preds(id)
                    .iter()
                    .filter(|p| self.mdfg.node(**p).map(MdfgNode::kind) == Some(MdfgNodeKind::Inst))
                    .count();
                indeg.insert(id, d);
            }
        }
        let mut queue: VecDeque<MdfgNodeId> = indeg
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(id, _)| *id)
            .collect();
        let mut out = Vec::new();
        while let Some(id) = queue.pop_front() {
            out.push(id);
            for &s in self.mdfg.succs(id) {
                if let Some(d) = indeg.get_mut(&s) {
                    *d -= 1;
                    if *d == 0 {
                        queue.push_back(s);
                    }
                }
            }
        }
        out
    }

    /// Route all remaining edges into output streams (and stream-to-stream
    /// copies).
    fn route_outputs(&mut self) -> Result<(), ScheduleError> {
        let edges: Vec<(MdfgNodeId, MdfgNodeId)> = self.mdfg.edges().collect();
        for (src, dst) in edges {
            if self.routes.contains_key(&(src, dst)) {
                continue;
            }
            let (sk, dk) = (
                self.mdfg.node(src).map(MdfgNode::kind),
                self.mdfg.node(dst).map(MdfgNode::kind),
            );
            let needs_route = matches!(
                (sk, dk),
                (Some(MdfgNodeKind::Inst), Some(MdfgNodeKind::OutputStream))
                    | (
                        Some(MdfgNodeKind::InputStream),
                        Some(MdfgNodeKind::OutputStream)
                    )
            );
            if !needs_route {
                continue;
            }
            let (sa, da) = match (self.assignment.get(&src), self.assignment.get(&dst)) {
                (Some(a), Some(b)) => (*a, *b),
                _ => continue,
            };
            let path = self
                .reusable_prior_route((src, dst), src, sa, da)
                .or_else(|| self.route(src, sa, da));
            match path {
                Some(path) => self.commit_route((src, dst), path),
                None => return Err(ScheduleError::NoRoute { edge: (src, dst) }),
            }
        }
        Ok(())
    }

    // ---- routing ---------------------------------------------------------

    /// Reuse the prior schedule's route for `edge` if it still runs from
    /// `from` to `to` over existing links, traverses only switches, and does
    /// not conflict with links already claimed by a different value. Skips
    /// the BFS entirely for the (common) untouched region during repair.
    fn reusable_prior_route(
        &self,
        edge: (MdfgNodeId, MdfgNodeId),
        value: MdfgNodeId,
        from: NodeId,
        to: NodeId,
    ) -> Option<Vec<NodeId>> {
        let path = self.prior?.routes.get(&edge)?;
        if path.first() != Some(&from) || path.last() != Some(&to) {
            return None;
        }
        let last = path.len() - 1;
        for (i, w) in path.windows(2).enumerate() {
            if !self.adj.has_edge(w[0], w[1]) {
                return None;
            }
            // Interior hops must still be switches.
            if i + 1 < last && !self.adj.is_switch(w[1]) {
                return None;
            }
            if self.adj.exclusive_link(w[0], w[1]) {
                if let Some(v) = self.link_use.get(&(w[0], w[1])) {
                    if *v != value {
                        return None;
                    }
                }
            }
        }
        Some(path.clone())
    }

    /// Directed BFS from `from` to `to` through switches, honouring the
    /// one-value-per-link constraint (fanout of `value` may share links).
    fn route(&self, value: MdfgNodeId, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        if from == to {
            return Some(vec![from]);
        }
        let usable = |a: NodeId, b: NodeId| -> bool {
            // Only switch-to-switch links are exclusive per value. Links
            // touching a port are wide (multi-lane) and links into a PE
            // are its operand slots — both carry several values.
            if !self.adj.exclusive_link(a, b) {
                return true;
            }
            match self.link_use.get(&(a, b)) {
                None => true,
                Some(v) => *v == value,
            }
        };
        let mut prev: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            for &next in self.adg.succs(cur) {
                if prev.contains_key(&next) || next == from {
                    continue;
                }
                if !usable(cur, next) {
                    continue;
                }
                // Only switches may be traversed; the destination itself
                // may be any fabric node or port.
                let is_dst = next == to;
                let is_switch = self.adj.is_switch(next);
                if !is_dst && !is_switch {
                    continue;
                }
                prev.insert(next, cur);
                if is_dst {
                    // reconstruct
                    let mut path = vec![to];
                    let mut c = to;
                    while c != from {
                        c = prev[&c];
                        path.push(c);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next);
            }
        }
        None
    }

    fn commit_route(&mut self, edge: (MdfgNodeId, MdfgNodeId), path: Vec<NodeId>) {
        for w in path.windows(2) {
            if self.adj.exclusive_link(w[0], w[1]) {
                self.link_use.insert((w[0], w[1]), edge.0);
            }
        }
        self.routes.insert(edge, path);
    }

    /// [`Self::commit_route`], recording every link this commit *newly*
    /// claimed so a failed candidate can undo precisely those claims.
    /// Links already carried by the same value (fanout sharing) stay put.
    fn commit_route_logged(
        &mut self,
        edge: (MdfgNodeId, MdfgNodeId),
        path: Vec<NodeId>,
        claimed: &mut Vec<(NodeId, NodeId)>,
    ) {
        for w in path.windows(2) {
            if self.adj.exclusive_link(w[0], w[1]) {
                let key = (w[0], w[1]);
                if self.link_use.insert(key, edge.0).is_none() {
                    claimed.push(key);
                }
            }
        }
        self.routes.insert(edge, path);
    }

    /// BFS hop distances from a node through the fabric, memoized per
    /// source (the ADG is immutable for the placement's duration).
    fn distances_from(&mut self, from: NodeId) -> Rc<BTreeMap<NodeId, usize>> {
        if let Some(m) = self.dist_cache.get(&from) {
            return Rc::clone(m);
        }
        let mut dist = BTreeMap::new();
        dist.insert(from, 0usize);
        let mut queue = VecDeque::new();
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            let d = dist[&cur];
            for &next in self.adg.succs(cur) {
                if dist.contains_key(&next) {
                    continue;
                }
                // traverse switches; record distance for all nodes
                dist.insert(next, d + 1);
                if self.adj.is_switch(next) {
                    queue.push_back(next);
                }
            }
        }
        let rc = Rc::new(dist);
        self.dist_cache.insert(from, Rc::clone(&rc));
        rc
    }

    // ---- scoring -----------------------------------------------------------

    fn finish(self) -> Schedule {
        score_mapping(
            self.mdfg,
            self.sys,
            self.assignment,
            self.stream_engines,
            self.routes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_adg::{mesh, MeshSpec, SystemParams};
    use overgen_compiler::{lower, LowerChoices};
    use overgen_ir::{expr, DataType, KernelBuilder, Suite};

    fn sys(spec: &MeshSpec) -> SysAdg {
        SysAdg::new(mesh(spec), SystemParams::default())
    }

    fn vecadd(n: u64) -> overgen_ir::Kernel {
        KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
            .array_input("a", n)
            .array_input("b", n)
            .array_output("c", n)
            .loop_const("i", n)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
            )
            .build()
            .unwrap()
    }

    fn fir() -> overgen_ir::Kernel {
        KernelBuilder::new("fir", Suite::Dsp, DataType::F64)
            .array_input("a", 255)
            .array_input("b", 128)
            .array_output("c", 128)
            .loop_const("io", 4)
            .loop_const("j", 128)
            .loop_const("ii", 32)
            .accum(
                "c",
                expr::idx_scaled("io", 32) + expr::idx("ii"),
                expr::load(
                    "a",
                    expr::idx_scaled("io", 32) + expr::idx("ii") + expr::idx("j"),
                ) * expr::load("b", expr::idx("j")),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn schedules_vecadd_on_tiny_mesh() {
        let mdfg = lower(
            &vecadd(64),
            0,
            &LowerChoices {
                unroll: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let s = sys(&MeshSpec::default());
        let sched = schedule(&mdfg, &s, None).unwrap();
        // every mdfg node is assigned
        assert_eq!(sched.assignment.len(), mdfg.node_count());
        assert!(sched.est.ipc > 0.0);
        assert!(sched.balance_penalty > 0.0 && sched.balance_penalty <= 1.0);
    }

    #[test]
    fn dedicated_pes_are_not_shared() {
        let mdfg = lower(
            &vecadd(64),
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let s = sys(&MeshSpec::default());
        let sched = schedule(&mdfg, &s, None).unwrap();
        let mut pes = Vec::new();
        for (mid, aid) in &sched.assignment {
            if mdfg.node(*mid).unwrap().kind() == MdfgNodeKind::Inst {
                pes.push(*aid);
            }
        }
        let uniq: BTreeSet<_> = pes.iter().collect();
        assert_eq!(uniq.len(), pes.len());
    }

    #[test]
    fn fir_maps_with_recurrence_on_general() {
        let mdfg = lower(
            &fir(),
            0,
            &LowerChoices {
                unroll: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let s = sys(&MeshSpec::general());
        let sched = schedule(&mdfg, &s, None).unwrap();
        // the high-reuse array `a` lands in a scratchpad
        assert!(sched.placement.spad_arrays.contains("a"));
    }

    #[test]
    fn unsupported_op_fails_cleanly() {
        // Tiny mesh supports only add/sub/mul on i64; ask for f64 mul.
        let k = KernelBuilder::new("fmul", Suite::Dsp, DataType::F64)
            .array_input("a", 64)
            .array_output("c", 64)
            .loop_const("i", 64)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i")) * expr::lit(2.0),
            )
            .build()
            .unwrap();
        let mdfg = lower(
            &k,
            0,
            &LowerChoices {
                unroll: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let err = schedule(&mdfg, &sys(&MeshSpec::default()), None).unwrap_err();
        assert!(matches!(err, ScheduleError::NoCandidate { .. }));
    }

    #[test]
    fn oversized_variant_fails_small_fabric() {
        // unroll 16 on a 4-PE mesh: 16 adds cannot fit 4 PEs.
        let mdfg = lower(
            &vecadd(64),
            0,
            &LowerChoices {
                unroll: 16,
                ..Default::default()
            },
        )
        .unwrap();
        let err = schedule(&mdfg, &sys(&MeshSpec::default()), None).unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::NoCandidate { .. } | ScheduleError::NoRoute { .. }
        ));
    }

    #[test]
    fn routes_are_contiguous_paths() {
        let mdfg = lower(
            &vecadd(64),
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let s = sys(&MeshSpec::default());
        let sched = schedule(&mdfg, &s, None).unwrap();
        for ((src, dst), path) in &sched.routes {
            assert_eq!(sched.assignment[src], path[0]);
            assert_eq!(sched.assignment[dst], *path.last().unwrap());
            for w in path.windows(2) {
                assert!(s.adg.has_edge(w[0], w[1]), "route uses missing edge");
            }
        }
    }

    #[test]
    fn link_exclusivity_except_fanout() {
        let mdfg = lower(
            &fir(),
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let s = sys(&MeshSpec::general());
        let sched = schedule(&mdfg, &s, None).unwrap();
        let adj = AdjBits::new(&s.adg);
        // map link -> set of value sources using it
        let mut link_vals: BTreeMap<(NodeId, NodeId), BTreeSet<MdfgNodeId>> = BTreeMap::new();
        for ((src, _), path) in &sched.routes {
            for w in path.windows(2) {
                if adj.exclusive_link(w[0], w[1]) {
                    link_vals.entry((w[0], w[1])).or_default().insert(*src);
                }
            }
        }
        for (_, vals) in link_vals {
            assert_eq!(vals.len(), 1, "link carries two different values");
        }
    }

    #[test]
    fn prior_assignment_is_honoured() {
        let mdfg = lower(
            &vecadd(64),
            0,
            &LowerChoices {
                unroll: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let s = sys(&MeshSpec::default());
        let first = schedule(&mdfg, &s, None).unwrap();
        let second = schedule(&mdfg, &s, Some(&first)).unwrap();
        assert_eq!(first.assignment, second.assignment);
    }

    #[test]
    fn seeded_reschedule_reuses_prior_routes() {
        let mdfg = lower(
            &fir(),
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let s = sys(&MeshSpec::general());
        let first = schedule(&mdfg, &s, None).unwrap();
        let second = schedule(&mdfg, &s, Some(&first)).unwrap();
        assert_eq!(first.routes, second.routes);
        assert_eq!(first, second);
    }

    #[test]
    fn quiet_placement_matches_loud_placement() {
        let mdfg = lower(
            &vecadd(64),
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let s = sys(&MeshSpec::default());
        let loud = schedule(&mdfg, &s, None).unwrap();
        let silent = place_quiet(&mdfg, &s, None).unwrap();
        assert_eq!(loud, silent);
    }

    #[test]
    fn indirect_array_requires_indirect_spad_or_dma() {
        let k = KernelBuilder::new("gather", Suite::MachSuite, DataType::I64)
            .array_input("val", 512)
            .array_input("col", 128)
            .array_output("y", 128)
            .loop_const("i", 128)
            .assign(
                "y",
                expr::idx("i"),
                expr::load_indirect("val", "col", expr::idx("i")),
            )
            .build()
            .unwrap();
        let mdfg = lower(
            &k,
            0,
            &LowerChoices {
                unroll: 1,
                ..Default::default()
            },
        )
        .unwrap();
        // tiny mesh spad has indirect = false -> val must land on the DMA
        let s = sys(&MeshSpec::default());
        let sched = schedule(&mdfg, &s, None).unwrap();
        assert!(!sched.placement.spad_arrays.contains("val"));
    }

    #[test]
    fn used_nodes_and_edges_cover_routes() {
        let mdfg = lower(
            &vecadd(64),
            0,
            &LowerChoices {
                unroll: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let s = sys(&MeshSpec::default());
        let sched = schedule(&mdfg, &s, None).unwrap();
        let nodes = sched.used_adg_nodes();
        for path in sched.routes.values() {
            for n in path {
                assert!(nodes.contains(n));
            }
        }
        assert!(!sched.used_adg_edges().is_empty());
    }
}
