//! The placement + routing algorithm.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use overgen_adg::{Adg, AdgNode, NodeId, NodeKind, SysAdg};
use overgen_mdfg::{Mdfg, MdfgNode, MdfgNodeId, MdfgNodeKind, MemPref, StreamPattern};
use overgen_model::{estimate_ipc, Placement};
use overgen_telemetry::{event, span};

use crate::types::{Schedule, ScheduleError};

/// Maximum placement candidates tried per instruction before giving up.
const MAX_CANDIDATES: usize = 32;

/// Schedule an mDFG onto a system ADG.
///
/// `prior` seeds placement: nodes whose previous hardware target is still
/// compatible are placed there first, which keeps repairs cheap and stable.
///
/// # Errors
///
/// Returns a [`ScheduleError`] when any node cannot be placed or any edge
/// cannot be routed; the DSE interprets this as "variant does not fit".
pub fn schedule(
    mdfg: &Mdfg,
    sys_adg: &SysAdg,
    prior: Option<&Schedule>,
) -> Result<Schedule, ScheduleError> {
    let _span = span!(
        "sched.place",
        mdfg = mdfg.name(),
        variant = mdfg.variant(),
        seeded = prior.is_some(),
    );
    let result = Placer::new(mdfg, sys_adg, prior).run();
    if let Err(e) = &result {
        event!(
            "sched.fail",
            mdfg = mdfg.name(),
            variant = mdfg.variant(),
            reason = format!("{e}"),
        );
    }
    result
}

struct Placer<'a> {
    mdfg: &'a Mdfg,
    adg: &'a Adg,
    sys: &'a SysAdg,
    prior: Option<&'a Schedule>,
    assignment: BTreeMap<MdfgNodeId, NodeId>,
    routes: BTreeMap<(MdfgNodeId, MdfgNodeId), Vec<NodeId>>,
    stream_engines: BTreeMap<MdfgNodeId, NodeId>,
    pe_used: BTreeSet<NodeId>,
    port_used: BTreeSet<NodeId>,
    spad_left: BTreeMap<NodeId, i64>,
    /// link -> value source currently carried (fanout of one value shares).
    link_use: BTreeMap<(NodeId, NodeId), MdfgNodeId>,
    /// Placement candidates tried for instructions (telemetry).
    attempts: u64,
    /// Candidates abandoned after a routing failure (telemetry).
    backtracks: u64,
}

impl<'a> Placer<'a> {
    fn new(mdfg: &'a Mdfg, sys: &'a SysAdg, prior: Option<&'a Schedule>) -> Self {
        let adg = &sys.adg;
        let spad_left = adg
            .nodes()
            .filter_map(|(id, n)| n.as_spad().map(|s| (id, i64::from(s.capacity_kb) * 1024)))
            .collect();
        Placer {
            mdfg,
            adg,
            sys,
            prior,
            assignment: BTreeMap::new(),
            routes: BTreeMap::new(),
            stream_engines: BTreeMap::new(),
            pe_used: BTreeSet::new(),
            port_used: BTreeSet::new(),
            spad_left,
            link_use: BTreeMap::new(),
            attempts: 0,
            backtracks: 0,
        }
    }

    fn prior_target(&self, node: MdfgNodeId) -> Option<NodeId> {
        self.prior
            .and_then(|p| p.assignment.get(&node).copied())
            .filter(|id| self.adg.contains(*id))
    }

    fn run(mut self) -> Result<Schedule, ScheduleError> {
        self.place_arrays()?;
        self.place_streams()?;
        self.place_insts_and_route()?;
        self.route_outputs()?;
        if let Some(c) = overgen_telemetry::current() {
            c.registry().counter("sched.attempts").add(self.attempts);
            c.registry()
                .counter("sched.backtracks")
                .add(self.backtracks);
        }
        event!(
            "sched.placed",
            mdfg = self.mdfg.name(),
            variant = self.mdfg.variant(),
            attempts = self.attempts,
            backtracks = self.backtracks,
        );
        Ok(self.finish())
    }

    // ---- arrays -> memory engines -------------------------------------

    fn place_arrays(&mut self) -> Result<(), ScheduleError> {
        // Gather array info: (benefit, id, size, pref, indirect, written).
        let mut arrays: Vec<(f64, MdfgNodeId)> = Vec::new();
        for (id, n) in self.mdfg.nodes() {
            if let MdfgNode::Array(_) = n {
                let benefit = self
                    .mdfg
                    .succs(id)
                    .iter()
                    .filter_map(|s| self.mdfg.node(*s).and_then(MdfgNode::as_stream))
                    .map(|s| s.reuse.scratchpad_benefit())
                    .fold(1.0f64, f64::max);
                arrays.push((benefit, id));
            }
        }
        // Highest scratchpad benefit first ("reuse information can help
        // determine which array node should be mapped to a scratchpad").
        arrays.sort_by(|a, b| b.0.total_cmp(&a.0));

        let dmas = self.adg.nodes_of_kind(NodeKind::Dma);
        for (_benefit, aid) in arrays {
            let (name, size, pref) = match self.mdfg.node(aid) {
                Some(MdfgNode::Array(a)) => (a.name.clone(), a.size_bytes, a.pref),
                _ => continue,
            };
            let needs_indirect = self.streams_of_array(aid).iter().any(|sid| {
                self.mdfg
                    .node(*sid)
                    .and_then(MdfgNode::as_stream)
                    .is_some_and(|s| s.pattern == StreamPattern::Indirect)
            });

            // Prior target first.
            if let Some(t) = self.prior_target(aid) {
                if self.try_assign_array(aid, t, size, needs_indirect) {
                    continue;
                }
            }
            let mut placed = false;
            if pref != MemPref::PreferDram {
                // Least-loaded compatible scratchpad.
                let mut spads: Vec<NodeId> = self.spad_left.keys().copied().collect();
                spads.sort_by_key(|id| std::cmp::Reverse(self.spad_left[id]));
                for sp in spads {
                    if self.try_assign_array(aid, sp, size, needs_indirect) {
                        placed = true;
                        break;
                    }
                }
            }
            if !placed {
                for &dma in &dmas {
                    if self.try_assign_array(aid, dma, size, needs_indirect) {
                        placed = true;
                        break;
                    }
                }
            }
            if !placed {
                // Last resort: any scratchpad even for PreferDram arrays.
                let mut spads: Vec<NodeId> = self.spad_left.keys().copied().collect();
                spads.sort_by_key(|id| std::cmp::Reverse(self.spad_left[id]));
                for sp in spads {
                    if self.try_assign_array(aid, sp, size, needs_indirect) {
                        placed = true;
                        break;
                    }
                }
            }
            if !placed {
                return Err(ScheduleError::SpadCapacity { array: name });
            }
        }
        Ok(())
    }

    fn streams_of_array(&self, aid: MdfgNodeId) -> Vec<MdfgNodeId> {
        let mut v: Vec<MdfgNodeId> = self.mdfg.succs(aid).to_vec();
        v.extend(self.mdfg.preds(aid).iter().copied());
        v
    }

    fn try_assign_array(
        &mut self,
        aid: MdfgNodeId,
        engine: NodeId,
        size: u64,
        needs_indirect: bool,
    ) -> bool {
        match self.adg.node(engine) {
            Some(AdgNode::Spad(sp)) => {
                if needs_indirect && !sp.indirect {
                    return false;
                }
                let left = self.spad_left.get_mut(&engine).expect("spad tracked");
                if *left < size as i64 {
                    return false;
                }
                *left -= size as i64;
                self.assignment.insert(aid, engine);
                true
            }
            Some(AdgNode::Dma(_)) => {
                // Indirect DMA requires reordering hardware; our DMA model
                // always includes the ROB (§VI-C), so indirect is fine.
                self.assignment.insert(aid, engine);
                true
            }
            _ => false,
        }
    }

    // ---- streams -> ports ----------------------------------------------

    /// An input stream that only feeds other input streams is an index
    /// stream consumed inside the engine (no fabric port).
    fn is_index_stream(&self, sid: MdfgNodeId) -> bool {
        let succs = self.mdfg.succs(sid);
        !succs.is_empty()
            && succs
                .iter()
                .all(|s| self.mdfg.node(*s).map(MdfgNode::kind) == Some(MdfgNodeKind::InputStream))
    }

    /// Recurrence input stream: fed by an output stream.
    fn is_rec_input(&self, sid: MdfgNodeId) -> bool {
        self.mdfg
            .preds(sid)
            .iter()
            .any(|p| self.mdfg.node(*p).map(MdfgNode::kind) == Some(MdfgNodeKind::OutputStream))
    }

    /// Engine that produces/consumes a stream's data.
    fn engine_of_stream(&self, sid: MdfgNodeId) -> Option<NodeId> {
        // Recurrence streams use the recurrence engine.
        let s = self.mdfg.node(sid)?.as_stream()?;
        if s.array.is_empty() {
            return self.adg.nodes_of_kind(NodeKind::Gen).into_iter().next();
        }
        if !s.is_write && self.is_rec_input(sid) || s.is_write && self.feeds_rec_input(sid) {
            return self.adg.nodes_of_kind(NodeKind::Rec).into_iter().next();
        }
        // Otherwise: the engine its array was assigned to.
        let aid = self.array_of_stream(sid)?;
        self.assignment.get(&aid).copied()
    }

    fn feeds_rec_input(&self, sid: MdfgNodeId) -> bool {
        self.mdfg
            .succs(sid)
            .iter()
            .any(|d| self.mdfg.node(*d).map(MdfgNode::kind) == Some(MdfgNodeKind::InputStream))
    }

    fn array_of_stream(&self, sid: MdfgNodeId) -> Option<MdfgNodeId> {
        let s = self.mdfg.node(sid)?.as_stream()?;
        if s.is_write {
            self.mdfg
                .succs(sid)
                .iter()
                .find(|d| self.mdfg.node(**d).map(MdfgNode::kind) == Some(MdfgNodeKind::Array))
                .copied()
        } else {
            self.mdfg
                .preds(sid)
                .iter()
                .find(|p| self.mdfg.node(**p).map(MdfgNode::kind) == Some(MdfgNodeKind::Array))
                .copied()
        }
    }

    fn place_streams(&mut self) -> Result<(), ScheduleError> {
        for (sid, n) in self.mdfg.nodes() {
            match n.kind() {
                MdfgNodeKind::InputStream => {
                    if self.is_index_stream(sid) {
                        // Consumed inside the engine: bind to the engine of
                        // its own array (bandwidth accounted by the model).
                        let aid = self.array_of_stream(sid).ok_or_else(|| {
                            ScheduleError::NoCandidate {
                                node: sid,
                                requirement: "index stream with an array".into(),
                            }
                        })?;
                        let engine = self.assignment.get(&aid).copied().ok_or(
                            ScheduleError::NoCandidate {
                                node: sid,
                                requirement: "engine for index array".into(),
                            },
                        )?;
                        self.assignment.insert(sid, engine);
                        self.stream_engines.insert(sid, engine);
                        continue;
                    }
                    let s = n.as_stream().expect("input stream");
                    let engine =
                        self.engine_of_stream(sid)
                            .ok_or_else(|| ScheduleError::NoCandidate {
                                node: sid,
                                requirement: format!(
                                    "a {} engine",
                                    if s.array.is_empty() {
                                        "generate"
                                    } else {
                                        "memory"
                                    }
                                ),
                            })?;
                    self.bind_in_port(sid, engine)?;
                }
                MdfgNodeKind::OutputStream => {
                    let engine =
                        self.engine_of_stream(sid)
                            .ok_or_else(|| ScheduleError::NoCandidate {
                                node: sid,
                                requirement: "a memory/recurrence engine".into(),
                            })?;
                    self.bind_out_port(sid, engine)?;
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn bind_in_port(&mut self, sid: MdfgNodeId, engine: NodeId) -> Result<(), ScheduleError> {
        let s = self
            .mdfg
            .node(sid)
            .and_then(MdfgNode::as_stream)
            .expect("stream");
        let mut candidates: Vec<NodeId> = self
            .adg
            .succs(engine)
            .iter()
            .copied()
            .filter(|p| {
                !self.port_used.contains(p)
                    && match self.adg.node(*p) {
                        Some(AdgNode::InPort(ip)) => !s.variable_tc || ip.stream_state,
                        _ => false,
                    }
            })
            .collect();
        // Narrowest adequate port first (save wide ports for wide streams);
        // prior target takes precedence.
        candidates.sort_by_key(|p| match self.adg.node(*p) {
            Some(AdgNode::InPort(ip)) => {
                let w = u64::from(ip.width_bytes);
                let adequate = w >= s.bytes_per_firing;
                (!adequate as u64, if adequate { w } else { u64::MAX - w })
            }
            _ => (1, u64::MAX),
        });
        if let Some(t) = self.prior_target(sid) {
            if candidates.contains(&t) {
                candidates.retain(|c| *c != t);
                candidates.insert(0, t);
            }
        }
        let port = candidates
            .into_iter()
            .next()
            .ok_or_else(|| ScheduleError::NoCandidate {
                node: sid,
                requirement: "a free input port fed by the stream's engine".into(),
            })?;
        self.port_used.insert(port);
        self.assignment.insert(sid, port);
        self.stream_engines.insert(sid, engine);
        Ok(())
    }

    fn bind_out_port(&mut self, sid: MdfgNodeId, engine: NodeId) -> Result<(), ScheduleError> {
        let s = self
            .mdfg
            .node(sid)
            .and_then(MdfgNode::as_stream)
            .expect("stream");
        let mut candidates: Vec<NodeId> = self
            .adg
            .preds(engine)
            .iter()
            .copied()
            .filter(|p| {
                !self.port_used.contains(p)
                    && matches!(self.adg.node(*p), Some(AdgNode::OutPort(_)))
            })
            .collect();
        candidates.sort_by_key(|p| match self.adg.node(*p) {
            Some(AdgNode::OutPort(op)) => {
                let w = u64::from(op.width_bytes);
                let adequate = w >= s.bytes_per_firing;
                (!adequate as u64, if adequate { w } else { u64::MAX - w })
            }
            _ => (1, u64::MAX),
        });
        if let Some(t) = self.prior_target(sid) {
            if candidates.contains(&t) {
                candidates.retain(|c| *c != t);
                candidates.insert(0, t);
            }
        }
        let port = candidates
            .into_iter()
            .next()
            .ok_or_else(|| ScheduleError::NoCandidate {
                node: sid,
                requirement: "a free output port draining to the stream's engine".into(),
            })?;
        self.port_used.insert(port);
        self.assignment.insert(sid, port);
        self.stream_engines.insert(sid, engine);
        Ok(())
    }

    // ---- instructions -> PEs, with routing ------------------------------

    fn place_insts_and_route(&mut self) -> Result<(), ScheduleError> {
        // Topological order over instruction nodes.
        let insts = self.topo_insts();
        for iid in insts {
            let inst = self
                .mdfg
                .node(iid)
                .and_then(MdfgNode::as_inst)
                .copied()
                .expect("inst");
            // Fabric predecessors already placed (streams or earlier insts).
            let placed_preds: Vec<(MdfgNodeId, NodeId)> = self
                .mdfg
                .preds(iid)
                .iter()
                .filter_map(|p| self.assignment.get(p).map(|a| (*p, *a)))
                .collect();

            let mut candidates: Vec<NodeId> = self
                .adg
                .nodes()
                .filter(|(id, n)| {
                    !self.pe_used.contains(id)
                        && n.as_pe().is_some_and(|pe| pe.supports(inst.op, inst.dtype))
                })
                .map(|(id, _)| id)
                .collect();
            if candidates.is_empty() {
                return Err(ScheduleError::NoCandidate {
                    node: iid,
                    requirement: format!("a free PE with {}.{}", inst.op, inst.dtype),
                });
            }
            // Order by closeness to placed predecessors.
            let dist_maps: Vec<BTreeMap<NodeId, usize>> = placed_preds
                .iter()
                .map(|(_, a)| self.distances_from(*a))
                .collect();
            candidates.sort_by_key(|c| {
                dist_maps
                    .iter()
                    .map(|m| m.get(c).copied().unwrap_or(1_000))
                    .sum::<usize>()
            });
            if let Some(t) = self.prior_target(iid) {
                if candidates.contains(&t) {
                    candidates.retain(|c| *c != t);
                    candidates.insert(0, t);
                }
            }

            let mut placed = false;
            for cand in candidates.into_iter().take(MAX_CANDIDATES) {
                self.attempts += 1;
                // Try routing all placed-pred edges to this candidate.
                let link_checkpoint = self.link_use.clone();
                let route_checkpoint: Vec<(MdfgNodeId, MdfgNodeId)> = Vec::new();
                let mut committed = route_checkpoint;
                let mut ok = true;
                for (pid, padg) in &placed_preds {
                    // Commit each pred route immediately so later preds see
                    // the links it claimed.
                    match self.route(*pid, *padg, cand) {
                        Some(path) => {
                            self.commit_route((*pid, iid), path);
                            committed.push((*pid, iid));
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    self.pe_used.insert(cand);
                    self.assignment.insert(iid, cand);
                    placed = true;
                    break;
                }
                self.backtracks += 1;
                self.link_use = link_checkpoint;
                for edge in committed {
                    self.routes.remove(&edge);
                }
            }
            if !placed {
                return Err(ScheduleError::NoRoute {
                    edge: (placed_preds.first().map(|(p, _)| *p).unwrap_or(iid), iid),
                });
            }
        }
        Ok(())
    }

    fn topo_insts(&self) -> Vec<MdfgNodeId> {
        let mut indeg: BTreeMap<MdfgNodeId, usize> = BTreeMap::new();
        for (id, n) in self.mdfg.nodes() {
            if n.kind() == MdfgNodeKind::Inst {
                let d = self
                    .mdfg
                    .preds(id)
                    .iter()
                    .filter(|p| self.mdfg.node(**p).map(MdfgNode::kind) == Some(MdfgNodeKind::Inst))
                    .count();
                indeg.insert(id, d);
            }
        }
        let mut queue: VecDeque<MdfgNodeId> = indeg
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(id, _)| *id)
            .collect();
        let mut out = Vec::new();
        while let Some(id) = queue.pop_front() {
            out.push(id);
            for &s in self.mdfg.succs(id) {
                if let Some(d) = indeg.get_mut(&s) {
                    *d -= 1;
                    if *d == 0 {
                        queue.push_back(s);
                    }
                }
            }
        }
        out
    }

    /// Route all remaining edges into output streams (and stream-to-stream
    /// copies).
    fn route_outputs(&mut self) -> Result<(), ScheduleError> {
        let edges: Vec<(MdfgNodeId, MdfgNodeId)> = self.mdfg.edges().collect();
        for (src, dst) in edges {
            if self.routes.contains_key(&(src, dst)) {
                continue;
            }
            let (sk, dk) = (
                self.mdfg.node(src).map(MdfgNode::kind),
                self.mdfg.node(dst).map(MdfgNode::kind),
            );
            let needs_route = matches!(
                (sk, dk),
                (Some(MdfgNodeKind::Inst), Some(MdfgNodeKind::OutputStream))
                    | (
                        Some(MdfgNodeKind::InputStream),
                        Some(MdfgNodeKind::OutputStream)
                    )
            );
            if !needs_route {
                continue;
            }
            let (sa, da) = match (self.assignment.get(&src), self.assignment.get(&dst)) {
                (Some(a), Some(b)) => (*a, *b),
                _ => continue,
            };
            match self.route(src, sa, da) {
                Some(path) => self.commit_route((src, dst), path),
                None => return Err(ScheduleError::NoRoute { edge: (src, dst) }),
            }
        }
        Ok(())
    }

    // ---- routing ---------------------------------------------------------

    /// Directed BFS from `from` to `to` through switches, honouring the
    /// one-value-per-link constraint (fanout of `value` may share links).
    fn route(&self, value: MdfgNodeId, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        if from == to {
            return Some(vec![from]);
        }
        let usable = |a: NodeId, b: NodeId| -> bool {
            // Only switch-to-switch links are exclusive per value. Links
            // touching a port are wide (multi-lane) and links into a PE
            // are its operand slots — both carry several values.
            if !Self::exclusive_link(self.adg, a, b) {
                return true;
            }
            match self.link_use.get(&(a, b)) {
                None => true,
                Some(v) => *v == value,
            }
        };
        let mut prev: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            for &next in self.adg.succs(cur) {
                if prev.contains_key(&next) || next == from {
                    continue;
                }
                if !usable(cur, next) {
                    continue;
                }
                // Only switches may be traversed; the destination itself
                // may be any fabric node or port.
                let is_dst = next == to;
                let is_switch = self.adg.kind(next) == Some(NodeKind::Switch);
                if !is_dst && !is_switch {
                    continue;
                }
                prev.insert(next, cur);
                if is_dst {
                    // reconstruct
                    let mut path = vec![to];
                    let mut c = to;
                    while c != from {
                        c = prev[&c];
                        path.push(c);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next);
            }
        }
        None
    }

    /// Whether a link is exclusive-per-value: only switch/PE-source to
    /// switch links are. Port links are multi-lane; links into a PE are
    /// distinct operand slots.
    pub(crate) fn exclusive_link(adg: &Adg, a: NodeId, b: NodeId) -> bool {
        adg.kind(a) != Some(NodeKind::InPort) && matches!(adg.kind(b), Some(NodeKind::Switch))
    }

    fn commit_route(&mut self, edge: (MdfgNodeId, MdfgNodeId), path: Vec<NodeId>) {
        for w in path.windows(2) {
            if Self::exclusive_link(self.adg, w[0], w[1]) {
                self.link_use.insert((w[0], w[1]), edge.0);
            }
        }
        self.routes.insert(edge, path);
    }

    /// BFS hop distances from a node through the fabric.
    fn distances_from(&self, from: NodeId) -> BTreeMap<NodeId, usize> {
        let mut dist = BTreeMap::new();
        dist.insert(from, 0usize);
        let mut queue = VecDeque::new();
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            let d = dist[&cur];
            for &next in self.adg.succs(cur) {
                if dist.contains_key(&next) {
                    continue;
                }
                // traverse switches; record distance for all nodes
                dist.insert(next, d + 1);
                if self.adg.kind(next) == Some(NodeKind::Switch) {
                    queue.push_back(next);
                }
            }
        }
        dist
    }

    // ---- scoring -----------------------------------------------------------

    fn finish(self) -> Schedule {
        // Pipeline balance: operand route-length mismatch beyond the PE's
        // delay FIFO creates bubbles (§V-B); port width shortfalls stretch
        // firings over multiple cycles.
        let mut penalty = 1.0f64;
        for (iid, n) in self.mdfg.nodes() {
            if n.kind() != MdfgNodeKind::Inst {
                continue;
            }
            let lens: Vec<usize> = self
                .mdfg
                .preds(iid)
                .iter()
                .filter_map(|p| self.routes.get(&(*p, iid)).map(Vec::len))
                .collect();
            if lens.len() >= 2 {
                let diff = lens.iter().max().unwrap() - lens.iter().min().unwrap();
                let depth = self
                    .assignment
                    .get(&iid)
                    .and_then(|a| self.adg.node(*a))
                    .and_then(AdgNode::as_pe)
                    .map(|pe| usize::from(pe.delay_fifo_depth))
                    .unwrap_or(0);
                if diff > depth {
                    penalty *= 1.0 / (1.0 + 0.25 * (diff - depth) as f64);
                }
            }
        }
        for (sid, n) in self.mdfg.nodes() {
            if let Some(s) = n.as_stream() {
                if let Some(port) = self.assignment.get(&sid) {
                    let width = match self.adg.node(*port) {
                        Some(AdgNode::InPort(p)) => u64::from(p.width_bytes),
                        Some(AdgNode::OutPort(p)) => u64::from(p.width_bytes),
                        _ => continue,
                    };
                    if width < s.bytes_per_firing {
                        penalty *= width as f64 / s.bytes_per_firing as f64;
                    }
                }
            }
        }

        // Per-engine bandwidth: each engine issues one request per cycle,
        // so the summed steady-state demand of its streams must fit its
        // bandwidth; oversubscription stretches the firing interval.
        {
            let mut demand: BTreeMap<NodeId, f64> = BTreeMap::new();
            for (sid, n) in self.mdfg.nodes() {
                if let Some(s) = n.as_stream() {
                    if let Some(engine) = self.stream_engines.get(&sid) {
                        *demand.entry(*engine).or_default() +=
                            s.bytes_per_firing as f64 / s.reuse.stationary.max(1.0);
                    }
                }
            }
            for (engine, d) in demand {
                let bw = self
                    .adg
                    .node(engine)
                    .and_then(AdgNode::engine_bw)
                    .map(f64::from)
                    .unwrap_or(8.0);
                if d > bw {
                    penalty *= bw / d;
                }
            }
        }

        // Scratchpad placement for the performance model.
        let mut placement = Placement::default();
        for (id, n) in self.mdfg.nodes() {
            if let MdfgNode::Array(a) = n {
                if let Some(engine) = self.assignment.get(&id) {
                    if matches!(self.adg.node(*engine), Some(AdgNode::Spad(_))) {
                        placement.spad_arrays.insert(a.name.clone());
                    }
                }
            }
        }
        let spad_bw: f64 = self
            .adg
            .nodes()
            .filter_map(|(_, n)| n.as_spad().map(|s| f64::from(s.bw_bytes)))
            .sum();
        let mut est = estimate_ipc(self.mdfg, &self.sys.sys, spad_bw, &placement);
        est.ipc *= penalty;
        est.per_tile_ipc *= penalty;

        Schedule {
            mdfg_name: self.mdfg.name().to_string(),
            variant: self.mdfg.variant(),
            assignment: self.assignment,
            stream_engines: self.stream_engines,
            routes: self.routes,
            placement,
            est,
            balance_penalty: penalty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_adg::{mesh, MeshSpec, SystemParams};
    use overgen_compiler::{lower, LowerChoices};
    use overgen_ir::{expr, DataType, KernelBuilder, Suite};

    fn sys(spec: &MeshSpec) -> SysAdg {
        SysAdg::new(mesh(spec), SystemParams::default())
    }

    fn vecadd(n: u64) -> overgen_ir::Kernel {
        KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
            .array_input("a", n)
            .array_input("b", n)
            .array_output("c", n)
            .loop_const("i", n)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
            )
            .build()
            .unwrap()
    }

    fn fir() -> overgen_ir::Kernel {
        KernelBuilder::new("fir", Suite::Dsp, DataType::F64)
            .array_input("a", 255)
            .array_input("b", 128)
            .array_output("c", 128)
            .loop_const("io", 4)
            .loop_const("j", 128)
            .loop_const("ii", 32)
            .accum(
                "c",
                expr::idx_scaled("io", 32) + expr::idx("ii"),
                expr::load(
                    "a",
                    expr::idx_scaled("io", 32) + expr::idx("ii") + expr::idx("j"),
                ) * expr::load("b", expr::idx("j")),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn schedules_vecadd_on_tiny_mesh() {
        let mdfg = lower(
            &vecadd(64),
            0,
            &LowerChoices {
                unroll: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let s = sys(&MeshSpec::default());
        let sched = schedule(&mdfg, &s, None).unwrap();
        // every mdfg node is assigned
        assert_eq!(sched.assignment.len(), mdfg.node_count());
        assert!(sched.est.ipc > 0.0);
        assert!(sched.balance_penalty > 0.0 && sched.balance_penalty <= 1.0);
    }

    #[test]
    fn dedicated_pes_are_not_shared() {
        let mdfg = lower(
            &vecadd(64),
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let s = sys(&MeshSpec::default());
        let sched = schedule(&mdfg, &s, None).unwrap();
        let mut pes = Vec::new();
        for (mid, aid) in &sched.assignment {
            if mdfg.node(*mid).unwrap().kind() == MdfgNodeKind::Inst {
                pes.push(*aid);
            }
        }
        let uniq: BTreeSet<_> = pes.iter().collect();
        assert_eq!(uniq.len(), pes.len());
    }

    #[test]
    fn fir_maps_with_recurrence_on_general() {
        let mdfg = lower(
            &fir(),
            0,
            &LowerChoices {
                unroll: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let s = sys(&MeshSpec::general());
        let sched = schedule(&mdfg, &s, None).unwrap();
        // the high-reuse array `a` lands in a scratchpad
        assert!(sched.placement.spad_arrays.contains("a"));
    }

    #[test]
    fn unsupported_op_fails_cleanly() {
        // Tiny mesh supports only add/sub/mul on i64; ask for f64 mul.
        let k = KernelBuilder::new("fmul", Suite::Dsp, DataType::F64)
            .array_input("a", 64)
            .array_output("c", 64)
            .loop_const("i", 64)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i")) * expr::lit(2.0),
            )
            .build()
            .unwrap();
        let mdfg = lower(
            &k,
            0,
            &LowerChoices {
                unroll: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let err = schedule(&mdfg, &sys(&MeshSpec::default()), None).unwrap_err();
        assert!(matches!(err, ScheduleError::NoCandidate { .. }));
    }

    #[test]
    fn oversized_variant_fails_small_fabric() {
        // unroll 16 on a 4-PE mesh: 16 adds cannot fit 4 PEs.
        let mdfg = lower(
            &vecadd(64),
            0,
            &LowerChoices {
                unroll: 16,
                ..Default::default()
            },
        )
        .unwrap();
        let err = schedule(&mdfg, &sys(&MeshSpec::default()), None).unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::NoCandidate { .. } | ScheduleError::NoRoute { .. }
        ));
    }

    #[test]
    fn routes_are_contiguous_paths() {
        let mdfg = lower(
            &vecadd(64),
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let s = sys(&MeshSpec::default());
        let sched = schedule(&mdfg, &s, None).unwrap();
        for ((src, dst), path) in &sched.routes {
            assert_eq!(sched.assignment[src], path[0]);
            assert_eq!(sched.assignment[dst], *path.last().unwrap());
            for w in path.windows(2) {
                assert!(s.adg.has_edge(w[0], w[1]), "route uses missing edge");
            }
        }
    }

    #[test]
    fn link_exclusivity_except_fanout() {
        let mdfg = lower(
            &fir(),
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let s = sys(&MeshSpec::general());
        let sched = schedule(&mdfg, &s, None).unwrap();
        // map link -> set of value sources using it
        let mut link_vals: BTreeMap<(NodeId, NodeId), BTreeSet<MdfgNodeId>> = BTreeMap::new();
        for ((src, _), path) in &sched.routes {
            for w in path.windows(2) {
                if Placer::exclusive_link(&s.adg, w[0], w[1]) {
                    link_vals.entry((w[0], w[1])).or_default().insert(*src);
                }
            }
        }
        for (_, vals) in link_vals {
            assert_eq!(vals.len(), 1, "link carries two different values");
        }
    }

    #[test]
    fn prior_assignment_is_honoured() {
        let mdfg = lower(
            &vecadd(64),
            0,
            &LowerChoices {
                unroll: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let s = sys(&MeshSpec::default());
        let first = schedule(&mdfg, &s, None).unwrap();
        let second = schedule(&mdfg, &s, Some(&first)).unwrap();
        assert_eq!(first.assignment, second.assignment);
    }

    #[test]
    fn indirect_array_requires_indirect_spad_or_dma() {
        let k = KernelBuilder::new("gather", Suite::MachSuite, DataType::I64)
            .array_input("val", 512)
            .array_input("col", 128)
            .array_output("y", 128)
            .loop_const("i", 128)
            .assign(
                "y",
                expr::idx("i"),
                expr::load_indirect("val", "col", expr::idx("i")),
            )
            .build()
            .unwrap();
        let mdfg = lower(
            &k,
            0,
            &LowerChoices {
                unroll: 1,
                ..Default::default()
            },
        )
        .unwrap();
        // tiny mesh spad has indirect = false -> val must land on the DMA
        let s = sys(&MeshSpec::default());
        let sched = schedule(&mdfg, &s, None).unwrap();
        assert!(!sched.placement.spad_arrays.contains("val"));
    }

    #[test]
    fn used_nodes_and_edges_cover_routes() {
        let mdfg = lower(
            &vecadd(64),
            0,
            &LowerChoices {
                unroll: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let s = sys(&MeshSpec::default());
        let sched = schedule(&mdfg, &s, None).unwrap();
        let nodes = sched.used_adg_nodes();
        for (_, path) in &sched.routes {
            for n in path {
                assert!(nodes.contains(n));
            }
        }
        assert!(!sched.used_adg_edges().is_empty());
    }
}
