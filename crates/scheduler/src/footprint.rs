//! Mutation footprint classification.
//!
//! Every DSE hardware mutation is classified by what it *can* do to existing
//! schedules — its schedule footprint. The footprint travels with a proposal
//! (so the evaluation cache can key on it and traces can attribute repair
//! outcomes to mutation classes), but it is advisory: the repair engine
//! always verifies the prior schedule against the mutated hardware and
//! derives the actual dirty set, so a mislabelled mutation can cost time,
//! never correctness.

/// What a hardware mutation can do to existing schedules, ordered by
/// increasing severity. A proposal carrying several mutations folds their
/// footprints with [`ScheduleFootprint::merge`] (worst wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ScheduleFootprint {
    /// No observable hardware change (a saturated resize, an abandoned
    /// mutation attempt).
    Pure,
    /// Node attributes changed — port widths, scratchpad capacity, engine
    /// bandwidth, delay-FIFO depth, capability sets — but the graph
    /// structure is untouched. Schedules stay *structurally* valid; a
    /// shrink may still evict an assignment (capacity, capability).
    Attribute,
    /// Pure additions: new nodes and/or edges. Everything a schedule could
    /// reference still exists unchanged.
    Additive,
    /// Removals restricted to hardware no live schedule uses, including
    /// switch collapses that patch affected routes in place.
    RemoveUnused,
    /// Arbitrary structural change: prior schedules may reference hardware
    /// that is gone.
    Structural,
}

impl ScheduleFootprint {
    /// Every footprint class, in severity order. Profile reports and tests
    /// iterate this for a stable class axis.
    pub const ALL: [ScheduleFootprint; 5] = [
        ScheduleFootprint::Pure,
        ScheduleFootprint::Attribute,
        ScheduleFootprint::Additive,
        ScheduleFootprint::RemoveUnused,
        ScheduleFootprint::Structural,
    ];

    /// Worst-of fold for proposals applying several mutations.
    #[must_use]
    pub fn merge(self, other: ScheduleFootprint) -> ScheduleFootprint {
        self.max(other)
    }

    /// Stable discriminant for cache keys.
    pub fn code(self) -> u8 {
        match self {
            ScheduleFootprint::Pure => 0,
            ScheduleFootprint::Attribute => 1,
            ScheduleFootprint::Additive => 2,
            ScheduleFootprint::RemoveUnused => 3,
            ScheduleFootprint::Structural => 4,
        }
    }

    /// Stable label for trace events.
    pub fn name(self) -> &'static str {
        match self {
            ScheduleFootprint::Pure => "pure",
            ScheduleFootprint::Attribute => "attribute",
            ScheduleFootprint::Additive => "additive",
            ScheduleFootprint::RemoveUnused => "remove-unused",
            ScheduleFootprint::Structural => "structural",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::ScheduleFootprint::*;

    #[test]
    fn merge_takes_the_worst() {
        assert_eq!(Pure.merge(Additive), Additive);
        assert_eq!(Structural.merge(Attribute), Structural);
        assert_eq!(RemoveUnused.merge(Additive), RemoveUnused);
        assert_eq!(Pure.merge(Pure), Pure);
    }

    #[test]
    fn codes_are_distinct_and_ordered() {
        let all = super::ScheduleFootprint::ALL;
        assert_eq!(all, [Pure, Attribute, Additive, RemoveUnused, Structural]);
        for w in all.windows(2) {
            assert!(w[0] < w[1]);
            assert!(w[0].code() < w[1].code());
        }
    }
}
