//! Incremental schedule repair (paper §V-A).
//!
//! Repair runs in two phases:
//!
//! 1. **Classification** — [`dirty_set`] verifies every placement decision
//!    of the prior schedule against the mutated hardware and collects the
//!    mDFG nodes whose decision no longer holds: assignment targets that
//!    vanished or lost a capability, streams whose engine or port binding
//!    changed, scratchpads that no longer fit their arrays, and routes with
//!    missing links or link-exclusivity conflicts.
//! 2. **Repair** — an empty dirty set means the seeded placer would
//!    reproduce the prior mapping decision-for-decision (prior targets are
//!    tried first and prior routes are reused verbatim), so the *fast path*
//!    reconstructs the schedule directly from the prior mapping and
//!    re-scores it — no placement or routing search at all. A non-empty
//!    dirty set falls back to a full placement seeded with the prior, which
//!    re-places the dirty region and keeps everything else put.
//!
//! Setting [`RepairOptions::incremental`] to `false` (env `OVERGEN_REPAIR=0`
//! in the bench harness) turns every fast-path hit into a silent full
//! placement that is asserted equal to the fast reconstruction — an oracle
//! mode the determinism gates run to prove the fast path changes nothing:
//! counters, events, and results are byte-identical in both modes.

use std::collections::{BTreeMap, BTreeSet};

use overgen_adg::{AdgNode, NodeId, SysAdg};
use overgen_mdfg::{Mdfg, MdfgNode, MdfgNodeId, MdfgNodeKind};
use overgen_telemetry::{event, span};

use crate::adj::AdjBits;
use crate::footprint::ScheduleFootprint;
use crate::place::{
    array_needs_indirect, array_of_stream, engine_of_stream, is_index_stream, place_quiet,
    schedule, score_mapping,
};
use crate::types::{Schedule, ScheduleError};

/// How a repair resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairOutcome {
    /// The prior schedule is still fully valid (only re-scored).
    Intact,
    /// Some nodes were re-placed; the count is how many moved.
    Repaired {
        /// Number of mDFG nodes whose hardware target changed.
        moved: usize,
    },
}

/// The hardware a proposal touched, as recorded by the rewrite engine's
/// delta: every node added, removed, or attribute-modified, and every edge
/// added or removed, between the graph the prior schedule was produced on
/// and the graph being repaired against.
///
/// Passing a scope to [`repair_with`] is a *contract*, not a hint: the
/// caller asserts the two graphs differ only within the scope and that the
/// prior schedule was clean against the pre-delta graph. Under that
/// contract an **empty** scope proves the dirty set is empty, so
/// classification skips the full decision scan entirely (the
/// `scheduler.repair.scoped` counter records these exits); debug builds
/// still run the scan and assert it agrees.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairScope {
    /// Nodes added, removed, or attribute-touched by the proposal.
    pub nodes: BTreeSet<NodeId>,
    /// Edges added or removed by the proposal.
    pub edges: BTreeSet<(NodeId, NodeId)>,
}

impl RepairScope {
    /// A scope containing nothing: the proposal provably changed no
    /// hardware.
    pub fn new() -> RepairScope {
        RepairScope::default()
    }

    /// True when the proposal touched no hardware at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.edges.is_empty()
    }

    /// Total touched entities (nodes + edges), for telemetry.
    pub fn len(&self) -> usize {
        self.nodes.len() + self.edges.len()
    }
}

/// Knobs for [`repair_with`].
#[derive(Debug, Clone)]
pub struct RepairOptions {
    /// Take the fast path when the dirty set is empty (the default). When
    /// `false`, eligible repairs run a silent full placement instead and
    /// assert it equals the fast reconstruction (verification mode).
    pub incremental: bool,
    /// Mutation footprint of the proposal being repaired, if known.
    /// Advisory: recorded in the `sched.repaired` event so traces attribute
    /// repair outcomes to mutation classes; never trusted for eligibility.
    pub footprint: Option<ScheduleFootprint>,
    /// Touched-hardware scope of the proposal, when the caller recorded
    /// one (see [`RepairScope`] for the contract it asserts). `None` keeps
    /// the historical behavior: classification always runs the full scan.
    pub scope: Option<RepairScope>,
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions {
            incremental: true,
            footprint: None,
            scope: None,
        }
    }
}

/// Repair `prior` against a (possibly mutated) `sys_adg` with defaults.
///
/// # Errors
///
/// Propagates scheduling failures when the mDFG no longer fits the mutated
/// hardware at all.
pub fn repair(
    prior: &Schedule,
    mdfg: &Mdfg,
    sys_adg: &SysAdg,
) -> Result<(Schedule, RepairOutcome), ScheduleError> {
    repair_with(prior, mdfg, sys_adg, &RepairOptions::default())
}

/// Repair `prior` against a (possibly mutated) `sys_adg`.
///
/// See the module docs for the fast-path/fallback split. Counters:
/// `scheduler.repair.fast` (empty dirty set, no placement ran),
/// `scheduler.repair.fallback` (seeded full placement ran), and
/// `scheduler.repair.dirty_nodes` (total dirty mDFG nodes across
/// fallbacks).
///
/// # Errors
///
/// Propagates scheduling failures when the mDFG no longer fits the mutated
/// hardware at all.
pub fn repair_with(
    prior: &Schedule,
    mdfg: &Mdfg,
    sys_adg: &SysAdg,
    opts: &RepairOptions,
) -> Result<(Schedule, RepairOutcome), ScheduleError> {
    let _span = span!("sched.repair", mdfg = mdfg.name(), variant = mdfg.variant());
    // An empty recorded scope proves nothing the prior schedule decided on
    // has changed, so skip building the adjacency index and scanning every
    // placement decision. The exit additionally requires a Pure footprint
    // (redundant for single-rule proposals, where empty delta ⟺ Pure, but
    // merged compound deltas can cancel to empty under a non-Pure merged
    // footprint) so that whether it fires — and the scoped counter with it
    // — is a pure function of cache-key-visible data. Debug builds keep
    // running the scan and hold the caller to the scope contract.
    let scoped_exit = opts.footprint == Some(ScheduleFootprint::Pure)
        && matches!(&opts.scope, Some(scope) if scope.is_empty());
    let dirty = if scoped_exit {
        if let Some(c) = overgen_telemetry::current() {
            c.registry().counter("scheduler.repair.scoped").inc();
        }
        debug_assert!(
            dirty_set(prior, mdfg, sys_adg).is_empty(),
            "empty rewrite scope but the prior schedule for {} v{} is dirty",
            prior.mdfg_name,
            prior.variant
        );
        BTreeSet::new()
    } else {
        dirty_set(prior, mdfg, sys_adg)
    };
    let footprint = opts.footprint.map_or("unknown", ScheduleFootprint::name);

    if dirty.is_empty() {
        if let Some(c) = overgen_telemetry::current() {
            c.registry().counter("scheduler.repair.fast").inc();
        }
        let fast = score_mapping(
            mdfg,
            sys_adg,
            prior.assignment.clone(),
            prior.stream_engines.clone(),
            prior.routes.clone(),
        );
        let sched = if opts.incremental {
            fast
        } else {
            // Verification mode: the seeded placer must land on exactly the
            // schedule the fast path reconstructed, or the fast path is
            // wrong. Placement runs silently so both modes trace alike.
            let full = place_quiet(mdfg, sys_adg, Some(prior))?;
            assert_eq!(
                full, fast,
                "repair fast path diverged from full placement for {} v{}",
                prior.mdfg_name, prior.variant
            );
            full
        };
        event!(
            "sched.repaired",
            mdfg = mdfg.name(),
            outcome = "fast",
            dirty = 0,
            footprint = footprint,
        );
        return Ok((sched, RepairOutcome::Intact));
    }

    if let Some(c) = overgen_telemetry::current() {
        c.registry().counter("scheduler.repair.fallback").inc();
        c.registry()
            .counter("scheduler.repair.dirty_nodes")
            .add(dirty.len() as u64);
    }
    let fresh = schedule(mdfg, sys_adg, Some(prior))?;
    let moved = fresh
        .assignment
        .iter()
        .filter(|(m, a)| prior.assignment.get(m) != Some(a))
        .count();
    event!(
        "sched.repaired",
        mdfg = mdfg.name(),
        outcome = "fallback",
        dirty = dirty.len(),
        moved = moved,
        footprint = footprint,
    );
    Ok((fresh, RepairOutcome::Repaired { moved }))
}

/// mDFG nodes whose prior placement decision no longer holds against the
/// mutated hardware. Empty means the seeded placer would reproduce the
/// prior schedule exactly, so repair may skip placement entirely.
///
/// The checks mirror, decision by decision, what the seeded placer accepts
/// when it re-encounters its own prior (prior targets are tried first and
/// prior routes are reused), which is what makes the fast path sound:
///
/// - every mDFG node still has a prior assignment to *existing* hardware;
/// - arrays: scratchpad targets still hold the **sum** of their assigned
///   arrays and still support indirect access where needed (DMA always ok);
/// - streams: the engine recomputed from array assignments matches the
///   prior binding, the port still hangs off that engine, has the right
///   direction, and still offers stream-state where the stream needs it;
/// - instructions: the PE still exists and supports op/dtype;
/// - routes: endpoints match the assignment, every hop's link still exists,
///   interior hops are still switches, and no exclusive link carries two
///   different values across the whole schedule.
pub(crate) fn dirty_set(prior: &Schedule, mdfg: &Mdfg, sys_adg: &SysAdg) -> BTreeSet<MdfgNodeId> {
    let adg = &sys_adg.adg;
    let adj = AdjBits::new(adg);
    let mut dirty = BTreeSet::new();

    for (mid, _) in mdfg.nodes() {
        if !prior.assignment.contains_key(&mid) {
            dirty.insert(mid);
        }
    }

    // Arrays (per-scratchpad aggregate capacity + indirect support).
    let mut spad_load: BTreeMap<NodeId, u64> = BTreeMap::new();
    for (mid, n) in mdfg.nodes() {
        let MdfgNode::Array(a) = n else { continue };
        let Some(&target) = prior.assignment.get(&mid) else {
            continue;
        };
        match adg.node(target) {
            Some(AdgNode::Spad(sp)) => {
                if array_needs_indirect(mdfg, mid) && !sp.indirect {
                    dirty.insert(mid);
                } else {
                    *spad_load.entry(target).or_default() += a.size_bytes;
                }
            }
            Some(AdgNode::Dma(_)) => {}
            _ => {
                dirty.insert(mid);
            }
        }
    }
    for (spad, load) in spad_load {
        let cap = adg
            .node(spad)
            .and_then(AdgNode::as_spad)
            .map(|s| u64::from(s.capacity_kb) * 1024)
            .unwrap_or(0);
        if load > cap {
            for (mid, n) in mdfg.nodes() {
                if matches!(n, MdfgNode::Array(_)) && prior.assignment.get(&mid) == Some(&spad) {
                    dirty.insert(mid);
                }
            }
        }
    }

    // Streams (engine identity + port binding).
    for (sid, n) in mdfg.nodes() {
        let Some(s) = n.as_stream() else { continue };
        let Some(&target) = prior.assignment.get(&sid) else {
            continue;
        };
        let ok = match n.kind() {
            MdfgNodeKind::InputStream if is_index_stream(mdfg, sid) => {
                // Bound to its array's engine, not to a fabric port.
                let want = array_of_stream(mdfg, sid)
                    .and_then(|aid| prior.assignment.get(&aid))
                    .copied();
                want == Some(target)
                    && prior.stream_engines.get(&sid) == Some(&target)
                    && adg.contains(target)
            }
            MdfgNodeKind::InputStream => {
                match engine_of_stream(mdfg, adg, &prior.assignment, sid) {
                    Some(engine) if prior.stream_engines.get(&sid) == Some(&engine) => {
                        match adg.node(target) {
                            Some(AdgNode::InPort(ip)) => {
                                (!s.variable_tc || ip.stream_state) && adj.has_edge(engine, target)
                            }
                            _ => false,
                        }
                    }
                    _ => false,
                }
            }
            MdfgNodeKind::OutputStream => {
                match engine_of_stream(mdfg, adg, &prior.assignment, sid) {
                    Some(engine) if prior.stream_engines.get(&sid) == Some(&engine) => {
                        matches!(adg.node(target), Some(AdgNode::OutPort(_)))
                            && adj.has_edge(target, engine)
                    }
                    _ => false,
                }
            }
            _ => true,
        };
        if !ok {
            dirty.insert(sid);
        }
    }

    // Instructions (PE existence + capability).
    for (iid, n) in mdfg.nodes() {
        let Some(i) = n.as_inst() else { continue };
        let Some(&pe) = prior.assignment.get(&iid) else {
            continue;
        };
        if !adg
            .node(pe)
            .and_then(AdgNode::as_pe)
            .is_some_and(|p| p.supports(i.op, i.dtype))
        {
            dirty.insert(iid);
        }
    }

    // Routes (hop existence, switch interiors, link exclusivity).
    let mut link_use: BTreeMap<(NodeId, NodeId), MdfgNodeId> = BTreeMap::new();
    for ((src, dst), path) in &prior.routes {
        let mut ok = !path.is_empty()
            && prior.assignment.get(src) == path.first()
            && prior.assignment.get(dst) == path.last();
        if ok {
            let last = path.len() - 1;
            for (i, w) in path.windows(2).enumerate() {
                if !adj.has_edge(w[0], w[1]) || (i + 1 < last && !adj.is_switch(w[1])) {
                    ok = false;
                    break;
                }
                if adj.exclusive_link(w[0], w[1])
                    && *link_use.entry((w[0], w[1])).or_insert(*src) != *src
                {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            dirty.insert(*dst);
        }
    }

    dirty
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_adg::{mesh, MeshSpec, NodeKind, SystemParams};
    use overgen_compiler::{lower, LowerChoices};
    use overgen_ir::{expr, DataType, KernelBuilder, Suite};

    fn setup() -> (Mdfg, SysAdg, Schedule) {
        let k = KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
            .array_input("a", 64)
            .array_input("b", 64)
            .array_output("c", 64)
            .loop_const("i", 64)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
            )
            .build()
            .unwrap();
        let mdfg = lower(
            &k,
            0,
            &LowerChoices {
                unroll: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let sys = SysAdg::new(mesh(&MeshSpec::default()), SystemParams::default());
        let sched = schedule(&mdfg, &sys, None).unwrap();
        (mdfg, sys, sched)
    }

    #[test]
    fn intact_when_nothing_changed() {
        let (mdfg, sys, sched) = setup();
        assert!(dirty_set(&sched, &mdfg, &sys).is_empty());
        let (again, outcome) = repair(&sched, &mdfg, &sys).unwrap();
        assert_eq!(outcome, RepairOutcome::Intact);
        assert_eq!(again.assignment, sched.assignment);
    }

    #[test]
    fn fast_path_matches_full_placement() {
        let (mdfg, sys, sched) = setup();
        let fast = repair(&sched, &mdfg, &sys).unwrap().0;
        // Verification mode re-runs the full placer and asserts equality
        // internally; the results must also agree with the fast path.
        let opts = RepairOptions {
            incremental: false,
            footprint: None,
            scope: None,
        };
        let full = repair_with(&sched, &mdfg, &sys, &opts).unwrap().0;
        assert_eq!(fast, full);
    }

    // One test per mutation-footprint class, checking the classification
    // the repair engine derives for a representative mutation.

    #[test]
    fn footprint_pure_unchanged_hardware_is_clean() {
        let (mdfg, sys, sched) = setup();
        assert!(dirty_set(&sched, &mdfg, &sys).is_empty());
    }

    #[test]
    fn footprint_attribute_resize_stays_clean_until_it_evicts() {
        let (mdfg, mut sys, sched) = setup();
        let spad = sys.adg.nodes_of_kind(NodeKind::Spad)[0];
        // Growing a scratchpad never dirties anything.
        if let Some(AdgNode::Spad(sp)) = sys.adg.node_mut(spad) {
            sp.capacity_kb *= 2;
        }
        assert!(dirty_set(&sched, &mdfg, &sys).is_empty());
        // Shrinking below the assigned arrays' total evicts them.
        if let Some(AdgNode::Spad(sp)) = sys.adg.node_mut(spad) {
            sp.capacity_kb = 0;
        }
        let uses_spad = sched.assignment.values().any(|a| *a == spad);
        let dirty = dirty_set(&sched, &mdfg, &sys);
        assert_eq!(!dirty.is_empty(), uses_spad);
    }

    #[test]
    fn footprint_additive_new_hardware_is_clean() {
        let (mdfg, mut sys, sched) = setup();
        // A new PE and an edge to it touch nothing the schedule uses.
        use overgen_adg::PeNode;
        use overgen_ir::{FuCap, Op};
        let sw = sys.adg.nodes_of_kind(NodeKind::Switch)[0];
        let pe = sys.adg.add_node(AdgNode::Pe(PeNode::with_caps([FuCap::new(
            Op::Add,
            DataType::I64,
        )])));
        sys.adg.add_edge(sw, pe).unwrap();
        assert!(dirty_set(&sched, &mdfg, &sys).is_empty());
        let (again, outcome) = repair(&sched, &mdfg, &sys).unwrap();
        assert_eq!(outcome, RepairOutcome::Intact);
        assert_eq!(again.assignment, sched.assignment);
    }

    #[test]
    fn footprint_remove_unused_pe_is_clean() {
        let (mdfg, mut sys, sched) = setup();
        // remove a PE that is NOT used by the schedule
        let used = sched.used_adg_nodes();
        let victim = sys
            .adg
            .nodes_of_kind(NodeKind::Pe)
            .into_iter()
            .find(|id| !used.contains(id))
            .expect("tiny mesh has spare PEs");
        sys.adg.remove_node(victim);
        assert!(dirty_set(&sched, &mdfg, &sys).is_empty());
        let (again, outcome) = repair(&sched, &mdfg, &sys).unwrap();
        assert_eq!(outcome, RepairOutcome::Intact);
        assert_eq!(again.assignment, sched.assignment);
    }

    #[test]
    fn footprint_structural_used_pe_removed_falls_back() {
        let (mdfg, mut sys, sched) = setup();
        // remove the PE the add instruction sits on
        let inst = *sched
            .assignment
            .iter()
            .find(|(mid, _)| mdfg.node(**mid).unwrap().kind() == MdfgNodeKind::Inst)
            .map(|(mid, _)| mid)
            .unwrap();
        let inst_pe = sched.assignment[&inst];
        sys.adg.remove_node(inst_pe);
        let dirty = dirty_set(&sched, &mdfg, &sys);
        assert!(dirty.contains(&inst), "the evicted instruction is dirty");
        let (again, outcome) = repair(&sched, &mdfg, &sys).unwrap();
        match outcome {
            RepairOutcome::Repaired { moved } => assert!(moved >= 1),
            RepairOutcome::Intact => panic!("expected a repair"),
        }
        // new target is a different, existing PE
        assert!(again.assignment.values().all(|a| sys.adg.contains(*a)));
    }

    #[test]
    fn empty_scope_skips_scan_and_matches_unscoped_repair() {
        let (mdfg, sys, sched) = setup();
        let unscoped = repair(&sched, &mdfg, &sys).unwrap();
        let opts = RepairOptions {
            incremental: true,
            footprint: Some(ScheduleFootprint::Pure),
            scope: Some(RepairScope::new()),
        };
        let scoped = repair_with(&sched, &mdfg, &sys, &opts).unwrap();
        assert_eq!(scoped.1, RepairOutcome::Intact);
        assert_eq!(scoped.0, unscoped.0);
    }

    #[test]
    fn non_empty_scope_still_runs_the_full_scan() {
        let (mdfg, mut sys, sched) = setup();
        // Remove the instruction's PE and declare it in the scope: the
        // scope is non-empty so classification must fall back to the scan
        // and find the evicted instruction.
        let inst = *sched
            .assignment
            .iter()
            .find(|(mid, _)| mdfg.node(**mid).unwrap().kind() == MdfgNodeKind::Inst)
            .map(|(mid, _)| mid)
            .unwrap();
        let inst_pe = sched.assignment[&inst];
        sys.adg.remove_node(inst_pe);
        let mut scope = RepairScope::new();
        scope.nodes.insert(inst_pe);
        assert!(!scope.is_empty());
        assert_eq!(scope.len(), 1);
        let opts = RepairOptions {
            incremental: true,
            footprint: Some(ScheduleFootprint::Structural),
            scope: Some(scope),
        };
        let (again, outcome) = repair_with(&sched, &mdfg, &sys, &opts).unwrap();
        match outcome {
            RepairOutcome::Repaired { moved } => assert!(moved >= 1),
            RepairOutcome::Intact => panic!("expected a repair"),
        }
        assert!(again.assignment.values().all(|a| sys.adg.contains(*a)));
    }

    #[test]
    fn unrepairable_when_no_pe_left() {
        let (mdfg, mut sys, sched) = setup();
        for pe in sys.adg.nodes_of_kind(NodeKind::Pe) {
            sys.adg.remove_node(pe);
        }
        assert!(repair(&sched, &mdfg, &sys).is_err());
    }
}
