//! Schedule repair (paper §V-A): revalidate a schedule against a mutated
//! ADG and re-place only what broke.

use overgen_adg::{AdgNode, SysAdg};
use overgen_mdfg::{Mdfg, MdfgNode};
use overgen_telemetry::{event, span};

use crate::place::schedule;
use crate::types::{Schedule, ScheduleError};

/// How a repair resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairOutcome {
    /// The prior schedule is still fully valid (only re-scored).
    Intact,
    /// Some nodes were re-placed; the count is how many moved.
    Repaired {
        /// Number of mDFG nodes whose hardware target changed.
        moved: usize,
    },
}

/// Repair `prior` against a (possibly mutated) `sys_adg`.
///
/// Fast path: if every assignment target still exists and is compatible and
/// every routed link still exists, the schedule is kept and only re-scored
/// (hardware bandwidth parameters may have changed). Otherwise a fresh
/// scheduling pass runs seeded with the prior assignment, moving as little
/// as possible.
///
/// # Errors
///
/// Propagates scheduling failures when the mDFG no longer fits the mutated
/// hardware at all.
pub fn repair(
    prior: &Schedule,
    mdfg: &Mdfg,
    sys_adg: &SysAdg,
) -> Result<(Schedule, RepairOutcome), ScheduleError> {
    let _span = span!("sched.repair", mdfg = mdfg.name(), variant = mdfg.variant());
    if prior_is_intact(prior, mdfg, sys_adg) {
        // Re-score only.
        let fresh = schedule(mdfg, sys_adg, Some(prior))?;
        if let Some(c) = overgen_telemetry::current() {
            c.registry().counter("sched.repair_intact").inc();
        }
        event!("sched.repaired", mdfg = mdfg.name(), outcome = "intact");
        return Ok((fresh, RepairOutcome::Intact));
    }
    let fresh = schedule(mdfg, sys_adg, Some(prior))?;
    let moved = fresh
        .assignment
        .iter()
        .filter(|(m, a)| prior.assignment.get(m) != Some(a))
        .count();
    if let Some(c) = overgen_telemetry::current() {
        c.registry().counter("sched.repair_moved").add(moved as u64);
    }
    event!(
        "sched.repaired",
        mdfg = mdfg.name(),
        outcome = "moved",
        moved = moved,
    );
    Ok((fresh, RepairOutcome::Repaired { moved }))
}

/// Whether every assignment and route of `prior` is still valid hardware.
pub(crate) fn prior_is_intact(prior: &Schedule, mdfg: &Mdfg, sys_adg: &SysAdg) -> bool {
    let adg = &sys_adg.adg;
    for (mid, aid) in &prior.assignment {
        let hw = match adg.node(*aid) {
            Some(n) => n,
            None => return false,
        };
        let ok = match mdfg.node(*mid) {
            Some(MdfgNode::Inst(i)) => hw.as_pe().is_some_and(|pe| pe.supports(i.op, i.dtype)),
            Some(MdfgNode::InputStream(s)) => match hw {
                AdgNode::InPort(ip) => !s.variable_tc || ip.stream_state,
                // index streams bind to engines
                AdgNode::Dma(_) | AdgNode::Spad(_) | AdgNode::Gen(_) | AdgNode::Rec(_) => true,
                _ => false,
            },
            Some(MdfgNode::OutputStream(_)) => matches!(hw, AdgNode::OutPort(_)),
            Some(MdfgNode::Array(a)) => match hw {
                AdgNode::Spad(sp) => u64::from(sp.capacity_kb) * 1024 >= a.size_bytes,
                AdgNode::Dma(_) => true,
                _ => false,
            },
            None => return false,
        };
        if !ok {
            return false;
        }
    }
    for path in prior.routes.values() {
        for w in path.windows(2) {
            if !adg.has_edge(w[0], w[1]) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_adg::{mesh, MeshSpec, NodeKind, SystemParams};
    use overgen_compiler::{lower, LowerChoices};
    use overgen_ir::{expr, DataType, KernelBuilder, Suite};

    fn setup() -> (Mdfg, SysAdg, Schedule) {
        let k = KernelBuilder::new("vecadd", Suite::Dsp, DataType::I64)
            .array_input("a", 64)
            .array_input("b", 64)
            .array_output("c", 64)
            .loop_const("i", 64)
            .assign(
                "c",
                expr::idx("i"),
                expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
            )
            .build()
            .unwrap();
        let mdfg = lower(
            &k,
            0,
            &LowerChoices {
                unroll: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let sys = SysAdg::new(mesh(&MeshSpec::default()), SystemParams::default());
        let sched = schedule(&mdfg, &sys, None).unwrap();
        (mdfg, sys, sched)
    }

    #[test]
    fn intact_when_nothing_changed() {
        let (mdfg, sys, sched) = setup();
        let (again, outcome) = repair(&sched, &mdfg, &sys).unwrap();
        assert_eq!(outcome, RepairOutcome::Intact);
        assert_eq!(again.assignment, sched.assignment);
    }

    #[test]
    fn repairs_after_unused_pe_removed() {
        let (mdfg, mut sys, sched) = setup();
        // remove a PE that is NOT used by the schedule
        let used = sched.used_adg_nodes();
        let victim = sys
            .adg
            .nodes_of_kind(NodeKind::Pe)
            .into_iter()
            .find(|id| !used.contains(id))
            .expect("tiny mesh has spare PEs");
        sys.adg.remove_node(victim);
        let (again, outcome) = repair(&sched, &mdfg, &sys).unwrap();
        assert_eq!(outcome, RepairOutcome::Intact);
        assert_eq!(again.assignment, sched.assignment);
    }

    #[test]
    fn repairs_after_used_pe_removed() {
        let (mdfg, mut sys, sched) = setup();
        // remove the PE the add instruction sits on
        let inst_pe = *sched
            .assignment
            .iter()
            .find(|(mid, _)| mdfg.node(**mid).unwrap().kind() == overgen_mdfg::MdfgNodeKind::Inst)
            .map(|(_, a)| a)
            .unwrap();
        sys.adg.remove_node(inst_pe);
        let (again, outcome) = repair(&sched, &mdfg, &sys).unwrap();
        match outcome {
            RepairOutcome::Repaired { moved } => assert!(moved >= 1),
            RepairOutcome::Intact => panic!("expected a repair"),
        }
        // new target is a different, existing PE
        assert!(again.assignment.values().all(|a| sys.adg.contains(*a)));
    }

    #[test]
    fn unrepairable_when_no_pe_left() {
        let (mdfg, mut sys, sched) = setup();
        for pe in sys.adg.nodes_of_kind(NodeKind::Pe) {
            sys.adg.remove_node(pe);
        }
        assert!(repair(&sched, &mdfg, &sys).is_err());
    }
}
