use std::collections::BTreeMap;
use std::fmt;

use overgen_adg::NodeId;
use overgen_mdfg::MdfgNodeId;
use overgen_model::{PerfEstimate, Placement};

/// A complete mapping of one mDFG onto one ADG.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Name of the scheduled kernel.
    pub mdfg_name: String,
    /// Which compiled variant was scheduled.
    pub variant: u32,
    /// mDFG node -> ADG node.
    pub assignment: BTreeMap<MdfgNodeId, NodeId>,
    /// Stream node -> stream engine serving it (ports appear in
    /// `assignment`; this records which DMA/scratchpad/generate/recurrence
    /// engine produces or consumes the stream's data).
    pub stream_engines: BTreeMap<MdfgNodeId, NodeId>,
    /// Routed fabric paths per mDFG edge: the full ADG node sequence from
    /// the source's ADG node to the destination's ADG node (inclusive).
    pub routes: BTreeMap<(MdfgNodeId, MdfgNodeId), Vec<NodeId>>,
    /// Scratchpad placement decided for the mDFG's arrays.
    pub placement: Placement,
    /// Performance estimate of this mapping (§V-C model, including the
    /// pipeline-balance penalty).
    pub est: PerfEstimate,
    /// Throughput penalty factor in (0, 1] from unbalanced operand delays
    /// exceeding PE delay-FIFO depth (§V-B edge-delay discussion).
    pub balance_penalty: f64,
}

impl Schedule {
    /// ADG nodes used by any assignment or route (the schedule's hardware
    /// footprint; module-capability pruning keeps these).
    pub fn used_adg_nodes(&self) -> std::collections::BTreeSet<NodeId> {
        let mut set: std::collections::BTreeSet<NodeId> =
            self.assignment.values().copied().collect();
        for path in self.routes.values() {
            set.extend(path.iter().copied());
        }
        set
    }

    /// ADG edges traversed by routes.
    pub fn used_adg_edges(&self) -> std::collections::BTreeSet<(NodeId, NodeId)> {
        let mut set = std::collections::BTreeSet::new();
        for path in self.routes.values() {
            for w in path.windows(2) {
                set.insert((w[0], w[1]));
            }
        }
        set
    }
}

/// Scheduling failures. The DSE treats these as "this variant does not fit
/// this hardware" and falls back to a less aggressive variant (§III-A
/// "Relax DFG Complexity").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// No compatible ADG node for an mDFG node.
    NoCandidate {
        /// The unmappable mDFG node.
        node: MdfgNodeId,
        /// Human-readable requirement description.
        requirement: String,
    },
    /// No conflict-free route for a dataflow edge.
    NoRoute {
        /// Edge endpoints.
        edge: (MdfgNodeId, MdfgNodeId),
    },
    /// A scratchpad ran out of capacity.
    SpadCapacity {
        /// Array that did not fit anywhere.
        array: String,
    },
    /// The prior schedule references hardware that no longer exists and
    /// could not be repaired.
    Unrepairable,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NoCandidate { node, requirement } => {
                write!(f, "no hardware candidate for {node}: needs {requirement}")
            }
            ScheduleError::NoRoute { edge } => {
                write!(
                    f,
                    "no conflict-free route for edge {} -> {}",
                    edge.0, edge.1
                )
            }
            ScheduleError::SpadCapacity { array } => {
                write!(f, "array `{array}` does not fit any memory engine")
            }
            ScheduleError::Unrepairable => write!(f, "prior schedule unrepairable"),
        }
    }
}

impl std::error::Error for ScheduleError {}
