//! The five MachSuite kernels (Table II rows 6-10).

use overgen_ir::{expr, ArrayRef, DataType, Kernel, KernelBuilder, Stmt, Suite};

/// All MachSuite kernels.
pub fn all() -> Vec<Kernel> {
    vec![stencil_3d(), crs(), gemm(), stencil_2d(), ellpack()]
}

/// 7-point 3-D stencil over a 34^3 grid for 8 timesteps, i64. The z-plane
/// neighbours make the innermost accesses strided (Table IV's stencil-3d
/// pathology); seven input ports in Table II.
pub fn stencil_3d() -> Kernel {
    let n: i64 = 34;
    let plane = n * n;
    KernelBuilder::new("stencil-3d", Suite::MachSuite, DataType::I64)
        .array_input("src", (n * n * n) as u64)
        .array_input("coef", 4)
        .array_output("dst", (n * n * n) as u64)
        .loop_const("t", 8)
        .loop_const("i", (n - 2) as u64)
        .loop_const("j", (n - 2) as u64)
        // innermost strides over z-planes: +-plane and +-n neighbours
        .loop_const("k", (n - 2) as u64)
        .assign(
            "dst",
            expr::idx_scaled("i", plane) + expr::idx_scaled("j", n) + expr::idx_scaled("k", 2),
            expr::load("coef", expr::idx_const(0))
                * expr::load(
                    "src",
                    expr::idx_scaled("i", plane)
                        + expr::idx_scaled("j", n)
                        + expr::idx_scaled("k", 2),
                )
                + expr::load("coef", expr::idx_const(1))
                    * (expr::load(
                        "src",
                        expr::idx_scaled("i", plane)
                            + expr::idx_scaled("j", n)
                            + expr::idx_scaled("k", 2).offset(plane),
                    ) + expr::load(
                        "src",
                        expr::idx_scaled("i", plane)
                            + expr::idx_scaled("j", n)
                            + expr::idx_scaled("k", 2).offset(-plane),
                    ))
                + expr::load("coef", expr::idx_const(2))
                    * (expr::load(
                        "src",
                        expr::idx_scaled("i", plane)
                            + expr::idx_scaled("j", n)
                            + expr::idx_scaled("k", 2).offset(n),
                    ) + expr::load(
                        "src",
                        expr::idx_scaled("i", plane)
                            + expr::idx_scaled("j", n)
                            + expr::idx_scaled("k", 2).offset(-n),
                    ))
                + expr::load("coef", expr::idx_const(3))
                    * (expr::load(
                        "src",
                        expr::idx_scaled("i", plane)
                            + expr::idx_scaled("j", n)
                            + expr::idx_scaled("k", 2).offset(1),
                    ) + expr::load(
                        "src",
                        expr::idx_scaled("i", plane)
                            + expr::idx_scaled("j", n)
                            + expr::idx_scaled("k", 2).offset(-1),
                    )),
        )
        .build()
        .expect("stencil-3d is well formed")
}

/// Sparse matrix-vector multiply in CRS format: 494 rows x ~4 nonzeros,
/// f64. Row lengths are data dependent (variable trip count) and the
/// column access is an indirect gather — both Table IV pathologies.
pub fn crs() -> Kernel {
    let rows: u64 = 494;
    let nnz: u64 = rows * 4;
    KernelBuilder::new("crs", Suite::MachSuite, DataType::F64)
        .array_input("val", nnz)
        .array_input("col", nnz)
        .array_input("vec", rows)
        .array_output("out", rows)
        .loop_const("i", rows)
        .loop_variable("j", 8, 4.0)
        .stmt(
            Stmt::accum(
                ArrayRef::affine("out", expr::idx("i")),
                expr::load("val", expr::idx_scaled("i", 4) + expr::idx("j"))
                    * expr::load_indirect("vec", "col", expr::idx_scaled("i", 4) + expr::idx("j")),
            )
            .with_guard(),
        )
        .build()
        .expect("crs is well formed")
}

/// Blocked (tiled) 64x64 i64 matrix multiply — the kernel AutoDSE's
/// pre-built database covers.
pub fn gemm() -> Kernel {
    let n: i64 = 64;
    KernelBuilder::new("gemm", Suite::MachSuite, DataType::I64)
        .array_input("a", (n * n) as u64)
        .array_input("b", (n * n) as u64)
        .array_output("c", (n * n) as u64)
        .loop_const("jj", 8) // column tiles of 8
        .loop_const("i", n as u64)
        .loop_const("k", n as u64)
        .loop_const("j", 8)
        .accum(
            "c",
            expr::idx_scaled("i", n) + expr::idx_scaled("jj", 8) + expr::idx("j"),
            expr::load("a", expr::idx_scaled("i", n) + expr::idx("k"))
                * expr::load(
                    "b",
                    expr::idx_scaled("k", n) + expr::idx_scaled("jj", 8) + expr::idx("j"),
                ),
        )
        .build()
        .expect("gemm is well formed")
}

/// 3x3 2-D stencil over a 66x66 grid, 32 timesteps, i64: the classic
/// sliding-window kernel HLS line buffers excel at (a Q1 outlier).
pub fn stencil_2d() -> Kernel {
    let n: i64 = 66;
    KernelBuilder::new("stencil-2d", Suite::MachSuite, DataType::I64)
        .array_input("src", (n * n) as u64)
        .array_input("f", 9)
        .array_output("dst", (n * n) as u64)
        .loop_const("t", 32)
        .loop_const("r", (n - 2) as u64)
        .loop_const("c", (n - 2) as u64)
        .assign(
            "dst",
            expr::idx_scaled("r", n) + expr::idx("c"),
            (expr::load("f", expr::idx_const(0))
                * expr::load("src", expr::idx_scaled("r", n) + expr::idx("c"))
                + expr::load("f", expr::idx_const(1))
                    * expr::load("src", expr::idx_scaled("r", n) + expr::idx("c").offset(1))
                + expr::load("f", expr::idx_const(2))
                    * expr::load("src", expr::idx_scaled("r", n) + expr::idx("c").offset(2)))
                + (expr::load("f", expr::idx_const(3))
                    * expr::load("src", expr::idx_scaled("r", n) + expr::idx("c").offset(n))
                    + expr::load("f", expr::idx_const(4))
                        * expr::load(
                            "src",
                            expr::idx_scaled("r", n) + expr::idx("c").offset(n + 1),
                        )
                    + expr::load("f", expr::idx_const(5))
                        * expr::load(
                            "src",
                            expr::idx_scaled("r", n) + expr::idx("c").offset(n + 2),
                        ))
                + (expr::load("f", expr::idx_const(6))
                    * expr::load(
                        "src",
                        expr::idx_scaled("r", n) + expr::idx("c").offset(2 * n),
                    )
                    + expr::load("f", expr::idx_const(7))
                        * expr::load(
                            "src",
                            expr::idx_scaled("r", n) + expr::idx("c").offset(2 * n + 1),
                        )
                    + expr::load("f", expr::idx_const(8))
                        * expr::load(
                            "src",
                            expr::idx_scaled("r", n) + expr::idx("c").offset(2 * n + 2),
                        )),
        )
        .build()
        .expect("stencil-2d is well formed")
}

/// ELLPACK sparse matrix-vector multiply, 494 rows x 4 columns, f64:
/// indirect gather into a vector every tile must replicate — the paper's
/// broadcast-missing outlier.
pub fn ellpack() -> Kernel {
    let rows: u64 = 494;
    KernelBuilder::new("ellpack", Suite::MachSuite, DataType::F64)
        .array_input("nzval", rows * 4)
        .array_input("cols", rows * 4)
        .array_input("vec", rows)
        .array_output("out", rows)
        .loop_const("i", rows)
        .loop_const("j", 4)
        .accum(
            "out",
            expr::idx("i"),
            expr::load("nzval", expr::idx_scaled("i", 4) + expr::idx("j"))
                * expr::load_indirect("vec", "cols", expr::idx_scaled("i", 4) + expr::idx("j")),
        )
        .wants_broadcast()
        .build()
        .expect("ellpack is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_ir::Op;

    #[test]
    fn stencil_3d_has_seven_reads_and_strides() {
        let k = stencil_3d();
        // 7 src loads + coef loads
        let src_reads = k.reads().iter().filter(|r| r.array == "src").count();
        assert_eq!(src_reads, 7);
        assert!(k.traits().strided_innermost);
    }

    #[test]
    fn crs_is_variable_and_indirect() {
        let t = crs().traits();
        assert!(t.variable_trip_count);
        assert!(t.indirect);
        assert!(t.guarded);
    }

    #[test]
    fn gemm_is_blocked() {
        assert_eq!(gemm().nest().depth(), 4);
        assert_eq!(gemm().count_op(Op::Mul), 1);
    }

    #[test]
    fn stencil_2d_window() {
        let k = stencil_2d();
        assert!(k.traits().sliding_window);
        assert_eq!(k.count_op(Op::Mul), 9);
        // 8 explicit adds + none implied (plain assign)
        assert_eq!(k.count_op(Op::Add), 8);
    }

    #[test]
    fn ellpack_wants_broadcast() {
        assert!(ellpack().traits().wants_broadcast);
    }
}
