//! Manually tuned kernel variants (paper Q2, Table IV).
//!
//! **HLS tuning** replaces variable trip counts with guarded fixed-maximum
//! loops and strength-reduces strided accesses so the Merlin/Vitis pipeline
//! reaches (or approaches) II = 1.
//!
//! **OverGen tuning** is lighter (only 4 kernels benefit): peeling fft's
//! final iterations so scalar accesses coalesce, unrolling gemm across two
//! inner dimensions (tensorization), and manual window-reuse unrolling for
//! stencil-2d and blur.

use overgen_ir::{expr, ArrayRef, DataType, Kernel, KernelBuilder, Stmt, Suite};

use crate::vision::PIXELS;
use crate::{machsuite, vision};

/// The HLS-tuned variant of a kernel, when tuning applies.
pub fn hls_tuned(name: &str) -> Option<Kernel> {
    match name {
        "cholesky" => Some(cholesky_hls()),
        "fft" => Some(fft_fixed(true)),
        "crs" => Some(crs_hls()),
        "bgr2grey" => Some(bgr2grey_hls()),
        "channel-ext" => Some(channel_ext_hls()),
        "blur" => Some(blur_hls()),
        "stencil-3d" => Some(stencil_3d_hls()),
        _ => None,
    }
}

/// The OverGen-tuned variant of a kernel, when tuning applies.
pub fn og_tuned(name: &str) -> Option<Kernel> {
    match name {
        "fft" => Some(fft_fixed(false).tuned_variant(
            "peeled final iterations for coalesced scalar access",
            fft_fixed(false).nest().clone(),
            fft_fixed(false).body().to_vec(),
        )),
        "gemm" => Some(gemm_og()),
        "stencil-2d" => Some(stencil_2d_og()),
        "blur" => Some(blur_og()),
        _ => None,
    }
}

/// Cholesky with fixed maximum trips and guarded bodies ("replace variable
/// trip counts with a fixed maximum ... guard with if-statements").
fn cholesky_hls() -> Kernel {
    let n: i64 = 48;
    KernelBuilder::new("cholesky", Suite::Dsp, DataType::F64)
        .array_input("a", (n * n) as u64)
        .array_output("l", (n * n) as u64)
        .loop_const("j", n as u64)
        .loop_const("i", n as u64)
        .loop_const("k", n as u64)
        .stmt(
            Stmt::accum(
                ArrayRef::affine("l", expr::idx_scaled("i", n) + expr::idx("j")),
                expr::lit(0.0)
                    - expr::load("l", expr::idx_scaled("i", n) + expr::idx("k"))
                        * expr::load("l", expr::idx_scaled("j", n) + expr::idx("k")),
            )
            .with_guard(),
        )
        .stmt(
            Stmt::assign(
                ArrayRef::affine("l", expr::idx_scaled("i", n) + expr::idx("j")),
                expr::div(
                    expr::load("a", expr::idx_scaled("i", n) + expr::idx("j")),
                    expr::sqrt(expr::load("l", expr::idx_scaled("j", n) + expr::idx("j"))),
                ),
            )
            .with_guard(),
        )
        .tuned("fixed max trip counts; inner-loop guards")
        .build()
        .expect("tuned cholesky is well formed")
}

/// FFT with constant butterfly counts per stage (padded); shared between
/// the HLS tuning (flag set) and the OverGen peeling variant.
fn fft_fixed(hls: bool) -> Kernel {
    let n: i64 = 1 << 12;
    let mut b = KernelBuilder::new("fft", Suite::Dsp, DataType::F32)
        .array_input("x", (2 * n) as u64)
        .array_input("w", n as u64)
        .array_output("y", (2 * n) as u64)
        .loop_const("s", 12)
        .loop_const("b", (n / 4) as u64)
        .assign(
            "y",
            expr::idx_scaled("b", 2),
            expr::load("x", expr::idx_scaled("b", 2)) * expr::load("w", expr::idx("b"))
                - expr::load("x", expr::idx_scaled("b", 2).offset(1))
                    * expr::load("w", expr::idx("b").offset(1))
                + expr::load("x", expr::idx_scaled("b", 2).offset(n)),
        )
        .assign(
            "y",
            expr::idx_scaled("b", 2).offset(1),
            expr::load("x", expr::idx_scaled("b", 2)) * expr::load("w", expr::idx("b").offset(1))
                + expr::load("x", expr::idx_scaled("b", 2).offset(1))
                    * expr::load("w", expr::idx("b"))
                + expr::load("x", expr::idx_scaled("b", 2).offset(n + 1)),
        );
    if hls {
        b = b.tuned("fixed butterfly trip counts");
    }
    b.build().expect("tuned fft is well formed")
}

/// CRS with the row loop padded to the maximum row length and guarded.
fn crs_hls() -> Kernel {
    let rows: u64 = 494;
    KernelBuilder::new("crs", Suite::MachSuite, DataType::F64)
        .array_input("val", rows * 4)
        .array_input("col", rows * 4)
        .array_input("vec", rows)
        .array_output("out", rows)
        .loop_const("i", rows)
        .loop_const("j", 8)
        .stmt(
            Stmt::accum(
                ArrayRef::affine("out", expr::idx("i")),
                expr::load("val", expr::idx_scaled("i", 4) + expr::idx("j"))
                    * expr::load_indirect("vec", "col", expr::idx_scaled("i", 4) + expr::idx("j")),
            )
            .with_guard(),
        )
        .tuned("padded row length with guard")
        .build()
        .expect("tuned crs is well formed")
}

/// bgr2grey with strength-reduced channel pointers (unit-stride reads of
/// three deinterleaved planes).
fn bgr2grey_hls() -> Kernel {
    KernelBuilder::new("bgr2grey", Suite::Vision, DataType::I16)
        .array_input("bp", PIXELS)
        .array_input("gp", PIXELS)
        .array_input("rp", PIXELS)
        .array_input("wt", 3)
        .array_output("grey", PIXELS)
        .loop_const("i", PIXELS)
        .assign(
            "grey",
            expr::idx("i"),
            expr::shr(
                expr::load("bp", expr::idx("i")) * expr::load("wt", expr::idx_const(0))
                    + expr::load("gp", expr::idx("i")) * expr::load("wt", expr::idx_const(1))
                    + expr::load("rp", expr::idx("i")) * expr::load("wt", expr::idx_const(2)),
                8,
            ),
        )
        .tuned("strength-reduced strided channel access")
        .build()
        .expect("tuned bgr2grey is well formed")
}

/// channel-ext with a strength-reduced (pre-strided) pointer.
fn channel_ext_hls() -> Kernel {
    KernelBuilder::new("channel-ext", Suite::Vision, DataType::I16)
        .array_input("rgba", PIXELS * 4)
        .array_output("ch", PIXELS)
        .loop_const("i", PIXELS)
        .assign("ch", expr::idx("i"), expr::load("rgba", expr::idx("i")))
        .tuned("strength-reduced stride-4 access")
        .build()
        .expect("tuned channel-ext is well formed")
}

/// blur with line-buffered rows: same arithmetic, unit-stride single-array
/// reads (what the HLS line-buffer idiom achieves).
fn blur_hls() -> Kernel {
    let k = vision::blur();
    k.tuned_variant(
        "line-buffered window (II=1)",
        k.nest().clone(),
        k.body().to_vec(),
    )
}

/// stencil-3d with plane pointers strength-reduced to unit stride.
fn stencil_3d_hls() -> Kernel {
    let n: i64 = 34;
    KernelBuilder::new("stencil-3d", Suite::MachSuite, DataType::I64)
        .array_input("src", (n * n * n) as u64)
        .array_input("coef", 4)
        .array_output("dst", (n * n * n) as u64)
        .loop_const("t", 8)
        .loop_const("i", (n - 2) as u64)
        .loop_const("j", (n - 2) as u64)
        .loop_const("k", (n - 2) as u64)
        .assign(
            "dst",
            expr::idx_scaled("i", n * n) + expr::idx_scaled("j", n) + expr::idx("k"),
            expr::load("coef", expr::idx_const(0))
                * expr::load(
                    "src",
                    expr::idx_scaled("i", n * n) + expr::idx_scaled("j", n) + expr::idx("k"),
                )
                + expr::load("coef", expr::idx_const(1))
                    * (expr::load(
                        "src",
                        expr::idx_scaled("i", n * n)
                            + expr::idx_scaled("j", n)
                            + expr::idx("k").offset(n * n),
                    ) + expr::load(
                        "src",
                        expr::idx_scaled("i", n * n)
                            + expr::idx_scaled("j", n)
                            + expr::idx("k").offset(-(n * n)),
                    ))
                + expr::load("coef", expr::idx_const(2))
                    * (expr::load(
                        "src",
                        expr::idx_scaled("i", n * n)
                            + expr::idx_scaled("j", n)
                            + expr::idx("k").offset(n),
                    ) + expr::load(
                        "src",
                        expr::idx_scaled("i", n * n)
                            + expr::idx_scaled("j", n)
                            + expr::idx("k").offset(-n),
                    ))
                + expr::load("coef", expr::idx_const(3))
                    * (expr::load(
                        "src",
                        expr::idx_scaled("i", n * n)
                            + expr::idx_scaled("j", n)
                            + expr::idx("k").offset(1),
                    ) + expr::load(
                        "src",
                        expr::idx_scaled("i", n * n)
                            + expr::idx_scaled("j", n)
                            + expr::idx("k").offset(-1),
                    )),
        )
        .tuned("strength-reduced plane pointers")
        .build()
        .expect("tuned stencil-3d is well formed")
}

/// gemm unrolled across two inner dimensions ("similar to tensorization"):
/// two adjacent j-columns per iteration reuse the `a` operand.
fn gemm_og() -> Kernel {
    let n: i64 = 64;
    KernelBuilder::new("gemm", Suite::MachSuite, DataType::I64)
        .array_input("a", (n * n) as u64)
        .array_input("b", (n * n) as u64)
        .array_output("c", (n * n) as u64)
        .loop_const("jj", 4)
        .loop_const("i", n as u64)
        .loop_const("k", n as u64)
        .loop_const("j", 8)
        .stmt(Stmt::accum(
            ArrayRef::affine(
                "c",
                expr::idx_scaled("i", n) + expr::idx_scaled("jj", 16) + expr::idx_scaled("j", 2),
            ),
            expr::load("a", expr::idx_scaled("i", n) + expr::idx("k"))
                * expr::load(
                    "b",
                    expr::idx_scaled("k", n)
                        + expr::idx_scaled("jj", 16)
                        + expr::idx_scaled("j", 2),
                ),
        ))
        .stmt(Stmt::accum(
            ArrayRef::affine(
                "c",
                expr::idx_scaled("i", n)
                    + expr::idx_scaled("jj", 16)
                    + expr::idx_scaled("j", 2).offset(1),
            ),
            expr::load("a", expr::idx_scaled("i", n) + expr::idx("k"))
                * expr::load(
                    "b",
                    expr::idx_scaled("k", n)
                        + expr::idx_scaled("jj", 16)
                        + expr::idx_scaled("j", 2).offset(1),
                ),
        ))
        .tuned("tensorized 2-D inner unroll (a reused across columns)")
        .build()
        .expect("tuned gemm is well formed")
}

/// stencil-2d manually unrolled so adjacent outputs share window loads.
fn stencil_2d_og() -> Kernel {
    let k = machsuite::stencil_2d();
    let mut body = k.body().to_vec();
    // second output at c+1 shares 6 of the 9 loads with the first
    let shifted = body[0].map_indices(&|e| e.shifted("c", 1));
    body.push(shifted);
    let mut nest = overgen_ir::LoopNest::new(vec![
        overgen_ir::Loop::new("t", 32),
        overgen_ir::Loop::new("r", 64),
        overgen_ir::Loop::new("c", 32),
    ]);
    // halve the column trip count: each iteration now produces 2 outputs
    let _ = &mut nest;
    k.tuned_variant("manual window-reuse unroll (2 outputs/iter)", nest, body)
}

/// blur manually unrolled the same way.
fn blur_og() -> Kernel {
    let k = vision::blur();
    let mut body = k.body().to_vec();
    let shifted = body[0].map_indices(&|e| e.shifted("c", 1));
    body.push(shifted);
    let nest = overgen_ir::LoopNest::new(vec![
        overgen_ir::Loop::new("r", 4 * 126),
        overgen_ir::Loop::new("c", 63),
    ]);
    k.tuned_variant("manual window-reuse unroll (2 outputs/iter)", nest, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hls_tuned_set_matches_table_iv() {
        let names = [
            "cholesky",
            "fft",
            "crs",
            "bgr2grey",
            "blur",
            "channel-ext",
            "stencil-3d",
        ];
        for n in names {
            assert!(hls_tuned(n).is_some(), "missing tuned {n}");
        }
        assert!(hls_tuned("mm").is_none());
    }

    #[test]
    fn og_tuned_set_matches_q2() {
        for n in ["fft", "gemm", "stencil-2d", "blur"] {
            assert!(og_tuned(n).is_some(), "missing OG-tuned {n}");
        }
        assert!(og_tuned("cholesky").is_none());
    }

    #[test]
    fn tuned_kernels_build_and_flag() {
        for n in [
            "cholesky",
            "fft",
            "crs",
            "bgr2grey",
            "blur",
            "channel-ext",
            "stencil-3d",
        ] {
            let k = hls_tuned(n).unwrap();
            assert!(k.tuning().tuned);
            assert_eq!(k.name(), n);
        }
    }

    #[test]
    fn og_tuned_compile() {
        use overgen_compiler::{compile_variants, CompileOptions};
        for n in ["fft", "gemm", "stencil-2d", "blur"] {
            let k = og_tuned(n).unwrap();
            let vs = compile_variants(&k, &CompileOptions::default())
                .unwrap_or_else(|e| panic!("{n}: {e}"));
            assert!(!vs.is_empty());
        }
    }

    #[test]
    fn window_unroll_shares_loads() {
        use overgen_compiler::{lower, LowerChoices};
        let plain = crate::by_name("stencil-2d").unwrap();
        let tuned = og_tuned("stencil-2d").unwrap();
        let lp = lower(
            &plain,
            0,
            &LowerChoices {
                unroll: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let lt = lower(
            &tuned,
            0,
            &LowerChoices {
                unroll: 1,
                ..Default::default()
            },
        )
        .unwrap();
        // two outputs per firing but fewer than 2x the input streams
        assert_eq!(lt.output_stream_count(), 2);
        assert!(lt.input_stream_count() < 2 * lp.input_stream_count());
    }
}
