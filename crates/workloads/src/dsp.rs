//! The five DSP kernels (from REVEL; Table II rows 1-5).

use overgen_ir::{expr, ArrayRef, DataType, Kernel, KernelBuilder, Stmt, Suite};

/// All DSP kernels.
pub fn all() -> Vec<Kernel> {
    vec![cholesky(), fft(), fir(), solver(), mm()]
}

/// Cholesky decomposition, 48x48 f64. Triangular iteration gives variable
/// trip counts and guarded updates; the diagonal needs divide and sqrt
/// (Table II: 5 mul, 4 add, 2 div-class ops).
pub fn cholesky() -> Kernel {
    let n: i64 = 48;
    KernelBuilder::new("cholesky", Suite::Dsp, DataType::F64)
        .array_input("a", (n * n) as u64)
        .array_output("l", (n * n) as u64)
        .loop_const("j", n as u64)
        .loop_variable("i", n as u64, n as f64 / 2.0)
        .loop_variable("k", n as u64, n as f64 / 2.0)
        // l[i*n+j] -= l[i*n+k] * l[j*n+k]  (update, guarded k < j)
        .stmt(
            Stmt::accum(
                ArrayRef::affine("l", expr::idx_scaled("i", n) + expr::idx("j")),
                expr::lit(0.0)
                    - expr::load("l", expr::idx_scaled("i", n) + expr::idx("k"))
                        * expr::load("l", expr::idx_scaled("j", n) + expr::idx("k")),
            )
            .with_guard(),
        )
        // diagonal normalisation: l[i*n+j] = (a[i*n+j] / l[j*n+j]) with sqrt
        .stmt(
            Stmt::assign(
                ArrayRef::affine("l", expr::idx_scaled("i", n) + expr::idx("j")),
                expr::div(
                    expr::load("a", expr::idx_scaled("i", n) + expr::idx("j")),
                    expr::sqrt(expr::load("l", expr::idx_scaled("j", n) + expr::idx("j"))),
                ),
            )
            .with_guard(),
        )
        .build()
        .expect("cholesky is well formed")
}

/// Radix-2 FFT over 2^12 complex f32 points. Stages have data-dependent
/// butterfly strides, which HLS sees as a variable inner trip count; the
/// butterfly is 4 multiplies and 8 adds on interleaved re/im (Table II).
pub fn fft() -> Kernel {
    let n: i64 = 1 << 12;
    KernelBuilder::new("fft", Suite::Dsp, DataType::F32)
        .array_input("x", (2 * n) as u64) // interleaved re/im
        .array_input("w", n as u64) // twiddles
        .array_output("y", (2 * n) as u64)
        .loop_const("s", 12) // stages
        .loop_variable("b", (n / 2) as u64, (n / 4) as f64) // butterflies per stage
        .stmt(Stmt::assign(
            ArrayRef::affine("y", expr::idx_scaled("b", 2)),
            // re: xr*wr - xi*wi + xr2 ; im folded into adjacent lane
            expr::load("x", expr::idx_scaled("b", 2)) * expr::load("w", expr::idx("b"))
                - expr::load("x", expr::idx_scaled("b", 2).offset(1))
                    * expr::load("w", expr::idx("b").offset(1))
                + expr::load("x", expr::idx_scaled("b", 2).offset(n)),
        ))
        .stmt(Stmt::assign(
            ArrayRef::affine("y", expr::idx_scaled("b", 2).offset(1)),
            expr::load("x", expr::idx_scaled("b", 2)) * expr::load("w", expr::idx("b").offset(1))
                + expr::load("x", expr::idx_scaled("b", 2).offset(1))
                    * expr::load("w", expr::idx("b"))
                + expr::load("x", expr::idx_scaled("b", 2).offset(n + 1)),
        ))
        .build()
        .expect("fft is well formed")
}

/// Tiled FIR filter: 2^10 outputs, 199 taps, f64 (the paper's running
/// Figure 5 example scaled to Table II's size).
pub fn fir() -> Kernel {
    let taps: i64 = 199;
    let out_tiles: i64 = 32; // io
    let tile: i64 = 32; // ii: 32*32 = 1024 = 2^10 outputs
    KernelBuilder::new("fir", Suite::Dsp, DataType::F64)
        .array_input("a", (out_tiles * tile + taps - 1) as u64)
        .array_input("b", taps as u64)
        .array_output("c", (out_tiles * tile) as u64)
        .loop_const("io", out_tiles as u64)
        .loop_const("j", taps as u64)
        .loop_const("ii", tile as u64)
        .accum(
            "c",
            expr::idx_scaled("io", tile) + expr::idx("ii"),
            expr::load(
                "a",
                expr::idx_scaled("io", tile) + expr::idx("ii") + expr::idx("j"),
            ) * expr::load("b", expr::idx("j")),
        )
        .build()
        .expect("fir is well formed")
}

/// Forward-substitution triangular solver, 48x48 f64: variable inner trip
/// (triangular), one divide per row (Table II: 4,4,1).
pub fn solver() -> Kernel {
    let n: i64 = 48;
    KernelBuilder::new("solver", Suite::Dsp, DataType::F64)
        .array_input("lmat", (n * n) as u64)
        .array_input("bvec", n as u64)
        .array_output("x", n as u64)
        .loop_const("i", n as u64)
        .loop_variable("j", n as u64, n as f64 / 2.0)
        .stmt(
            Stmt::accum(
                ArrayRef::affine("x", expr::idx("i")),
                expr::lit(0.0)
                    - expr::load("lmat", expr::idx_scaled("i", n) + expr::idx("j"))
                        * expr::load("x", expr::idx("j")),
            )
            .with_guard(),
        )
        .stmt(Stmt::assign(
            ArrayRef::affine("x", expr::idx("i")),
            expr::div(
                expr::load("bvec", expr::idx("i")),
                expr::load("lmat", expr::idx_scaled("i", n + 1)),
            ),
        ))
        .build()
        .expect("solver is well formed")
}

/// Dense matrix multiply, 32^3 f64, untiled (`mm` is NOT blocked — the
/// paper distinguishes it from `gemm`).
pub fn mm() -> Kernel {
    let n: i64 = 32;
    KernelBuilder::new("mm", Suite::Dsp, DataType::F64)
        .array_input("a", (n * n) as u64)
        .array_input("b", (n * n) as u64)
        .array_output("c", (n * n) as u64)
        .loop_const("i", n as u64)
        .loop_const("k", n as u64)
        .loop_const("j", n as u64)
        .accum(
            "c",
            expr::idx_scaled("i", n) + expr::idx("j"),
            expr::load("a", expr::idx_scaled("i", n) + expr::idx("k"))
                * expr::load("b", expr::idx_scaled("k", n) + expr::idx("j")),
        )
        .build()
        .expect("mm is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_ir::Op;

    #[test]
    fn cholesky_shape() {
        let k = cholesky();
        let t = k.traits();
        assert!(t.variable_trip_count);
        assert!(t.guarded);
        assert_eq!(k.count_op(Op::Sqrt), 1);
        assert_eq!(k.count_op(Op::Div), 1);
    }

    #[test]
    fn fft_butterfly_ops() {
        let k = fft();
        assert_eq!(k.count_op(Op::Mul), 4);
        assert!(k.traits().variable_trip_count);
    }

    #[test]
    fn fir_matches_figure5_structure() {
        let k = fir();
        assert_eq!(k.nest().depth(), 3);
        assert_eq!(k.count_op(Op::Mul), 1);
        assert_eq!(k.total_iterations(), (32 * 199 * 32) as f64);
    }

    #[test]
    fn mm_is_simple_and_solver_divides() {
        assert_eq!(mm().count_op(Op::Mul), 1);
        assert_eq!(solver().count_op(Op::Div), 1);
    }
}
