//! The 19 evaluation kernels of the OverGen paper (Table II), ported to the
//! kernel IR: 5 DSP kernels (from REVEL), 5 MachSuite kernels, and 9 Xilinx
//! Vitis Vision kernels — each in its plain form plus, where the paper's Q2
//! study calls for it, manually *tuned* variants for the HLS baseline
//! (fixed trip counts, strength-reduced strides) and for OverGen (loop
//! peeling, tensorized unrolling, window-reuse unrolling).
//!
//! # Example
//!
//! ```
//! use overgen_workloads as workloads;
//! use overgen_ir::Suite;
//!
//! assert_eq!(workloads::all().len(), 19);
//! assert_eq!(workloads::suite(Suite::Vision).len(), 9);
//! let fir = workloads::by_name("fir").unwrap();
//! assert_eq!(fir.suite(), Suite::Dsp);
//! ```

mod dsp;
mod machsuite;
mod tuned;
mod vision;

use overgen_ir::{Kernel, Suite};

/// Names of the workloads that benefit from kernel tuning (Figure 14's
/// nine bars: seven HLS-tuning kernels of Table IV plus `gemm` and
/// `stencil-2d` on the OverGen side).
pub const TUNING_SENSITIVE: [&str; 9] = [
    "cholesky",
    "fft",
    "stencil-3d",
    "crs",
    "gemm",
    "stencil-2d",
    "channel-ext",
    "bgr2grey",
    "blur",
];

/// All 19 kernels in Table II order (untuned variants).
pub fn all() -> Vec<Kernel> {
    let mut v = dsp::all();
    v.extend(machsuite::all());
    v.extend(vision::all());
    v
}

/// All kernels of one suite.
pub fn suite(s: Suite) -> Vec<Kernel> {
    match s {
        Suite::Dsp => dsp::all(),
        Suite::MachSuite => machsuite::all(),
        Suite::Vision => vision::all(),
    }
}

/// Look up an untuned kernel by its paper name.
pub fn by_name(name: &str) -> Option<Kernel> {
    all().into_iter().find(|k| k.name() == name)
}

/// The manually tuned variant for the **HLS/AutoDSE** flow (fixed maximum
/// trip counts with guards; strength-reduced strided accesses — paper Q2).
/// `None` when the kernel needs no HLS tuning.
pub fn hls_tuned(name: &str) -> Option<Kernel> {
    tuned::hls_tuned(name)
}

/// The manually tuned variant for **OverGen** (fft peeling, gemm
/// tensorized unrolling, stencil/blur window-reuse unrolling — paper Q2).
/// `None` when the kernel needs no OverGen tuning.
pub fn og_tuned(name: &str) -> Option<Kernel> {
    tuned::og_tuned(name)
}

/// Best-effort kernel for a flow: the tuned variant when one exists, else
/// the plain kernel.
pub fn for_hls_tuned_run(name: &str) -> Option<Kernel> {
    hls_tuned(name).or_else(|| by_name(name))
}

/// Suggested Table II unroll degree per suite (the "best DFG" widths).
pub fn table_unroll(s: Suite) -> u32 {
    match s {
        Suite::Dsp => 4,
        Suite::MachSuite => 8,
        Suite::Vision => 16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_ir::DataType;

    #[test]
    fn nineteen_workloads_in_three_suites() {
        assert_eq!(all().len(), 19);
        assert_eq!(suite(Suite::Dsp).len(), 5);
        assert_eq!(suite(Suite::MachSuite).len(), 5);
        assert_eq!(suite(Suite::Vision).len(), 9);
    }

    #[test]
    fn names_are_unique_and_match_paper() {
        let names: Vec<String> = all().iter().map(|k| k.name().to_string()).collect();
        let uniq: std::collections::BTreeSet<&String> = names.iter().collect();
        assert_eq!(uniq.len(), 19);
        for n in [
            "cholesky",
            "fft",
            "fir",
            "solver",
            "mm",
            "stencil-3d",
            "crs",
            "gemm",
            "stencil-2d",
            "ellpack",
            "channel-ext",
            "bgr2grey",
            "blur",
            "accumulate",
            "acc-sqr",
            "vecmax",
            "acc-weight",
            "convert-bit",
            "derivative",
        ] {
            assert!(names.iter().any(|x| x == n), "missing {n}");
        }
    }

    #[test]
    fn dtypes_match_table_ii() {
        assert_eq!(by_name("cholesky").unwrap().dtype(), DataType::F64);
        assert_eq!(by_name("fft").unwrap().dtype(), DataType::F32);
        assert_eq!(by_name("stencil-3d").unwrap().dtype(), DataType::I64);
        assert_eq!(by_name("crs").unwrap().dtype(), DataType::F64);
        for v in suite(Suite::Vision) {
            assert_eq!(v.dtype(), DataType::I16, "{}", v.name());
        }
    }

    #[test]
    fn all_kernels_compile_to_mdfgs() {
        use overgen_compiler::{compile_variants, CompileOptions};
        for k in all() {
            let vs = compile_variants(&k, &CompileOptions::default())
                .unwrap_or_else(|e| panic!("{} failed: {e}", k.name()));
            assert!(!vs.is_empty(), "{} produced no variants", k.name());
            for v in &vs {
                v.validate().unwrap_or_else(|e| panic!("{}: {e}", k.name()));
            }
        }
    }

    #[test]
    fn traits_match_paper_pathologies() {
        // Table IV causes: variable trip counts
        assert!(by_name("cholesky").unwrap().traits().variable_trip_count);
        assert!(by_name("crs").unwrap().traits().variable_trip_count);
        assert!(by_name("fft").unwrap().traits().variable_trip_count);
        // ... and inefficient strided access
        assert!(by_name("bgr2grey").unwrap().traits().strided_innermost);
        assert!(by_name("channel-ext").unwrap().traits().strided_innermost);
        assert!(by_name("stencil-3d").unwrap().traits().strided_innermost);
        // outliers
        assert!(by_name("stencil-2d").unwrap().traits().sliding_window);
        assert!(by_name("derivative").unwrap().traits().sliding_window);
        assert!(by_name("ellpack").unwrap().traits().wants_broadcast);
        assert!(by_name("crs").unwrap().traits().indirect);
    }

    #[test]
    fn tuned_variants_exist_for_table_iv_kernels() {
        for n in [
            "cholesky",
            "fft",
            "crs",
            "bgr2grey",
            "blur",
            "channel-ext",
            "stencil-3d",
        ] {
            let t = hls_tuned(n).unwrap_or_else(|| panic!("no HLS tuned {n}"));
            assert!(t.tuning().tuned);
            assert!(
                !t.traits().variable_trip_count
                    || !t.nest().has_variable_trip()
                    || t.tuning().tuned
            );
        }
        for n in ["fft", "gemm", "stencil-2d", "blur"] {
            assert!(og_tuned(n).is_some(), "no OG tuned {n}");
        }
    }

    #[test]
    fn hls_tuning_removes_pathologies() {
        for n in ["bgr2grey", "blur", "channel-ext", "stencil-3d"] {
            let t = hls_tuned(n).unwrap();
            assert!(
                !t.traits().strided_innermost,
                "{n} tuned variant still strided"
            );
        }
        for n in ["cholesky", "fft", "crs"] {
            let t = hls_tuned(n).unwrap();
            assert!(
                !t.traits().variable_trip_count,
                "{n} tuned variant still variable-trip"
            );
        }
    }

    #[test]
    fn vision_kernels_share_size() {
        for k in suite(Suite::Vision) {
            // 128^2 x 4 elements flow through each vision kernel
            assert!(
                k.total_iterations() >= 65536.0 / 16.0,
                "{} too small",
                k.name()
            );
        }
    }
}
