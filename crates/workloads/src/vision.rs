//! The nine Xilinx Vitis Vision kernels (Table II rows 11-19): i16 pixels,
//! 128x128 images processed in batches of four.

use overgen_ir::{expr, DataType, Kernel, KernelBuilder, Suite};

/// Pixels per batch: 128^2 x 4.
pub const PIXELS: u64 = 128 * 128 * 4;

/// All Vision kernels.
pub fn all() -> Vec<Kernel> {
    vec![
        channel_ext(),
        bgr2grey(),
        blur(),
        accumulate(),
        acc_sqr(),
        vecmax(),
        acc_weight(),
        convert_bit(),
        derivative(),
    ]
}

fn base(name: &str) -> KernelBuilder {
    KernelBuilder::new(name, Suite::Vision, DataType::I16)
}

/// Channel extraction: pick one channel from interleaved RGBA — a pure
/// data-movement kernel (Table II: 0 ops) with a stride-4 innermost read.
pub fn channel_ext() -> Kernel {
    base("channel-ext")
        .array_input("rgba", PIXELS * 4)
        .array_output("ch", PIXELS)
        .loop_const("i", PIXELS)
        .assign(
            "ch",
            expr::idx("i"),
            expr::load("rgba", expr::idx_scaled("i", 4)),
        )
        .build()
        .expect("channel-ext is well formed")
}

/// BGR to greyscale: weighted channel sum with a stride-3 read pattern
/// (Table IV's bgr2grey pathology).
pub fn bgr2grey() -> Kernel {
    base("bgr2grey")
        .array_input("bgr", PIXELS * 3)
        .array_input("wt", 3)
        .array_output("grey", PIXELS)
        .loop_const("i", PIXELS)
        .assign(
            "grey",
            expr::idx("i"),
            expr::shr(
                expr::load("bgr", expr::idx_scaled("i", 3)) * expr::load("wt", expr::idx_const(0))
                    + expr::load("bgr", expr::idx_scaled("i", 3).offset(1))
                        * expr::load("wt", expr::idx_const(1))
                    + expr::load("bgr", expr::idx_scaled("i", 3).offset(2))
                        * expr::load("wt", expr::idx_const(2)),
                8,
            ),
        )
        .build()
        .expect("bgr2grey is well formed")
}

/// 3x3 box blur: a sliding window of adds plus a normalising shift
/// (Table II: 0 mul, 52 add, 8 shift at the best unroll).
pub fn blur() -> Kernel {
    let w: i64 = 128;
    base("blur")
        .array_input("src", PIXELS + 2 * w as u64 + 2)
        .array_output("dst", PIXELS)
        .loop_const("r", 4 * 126)
        .loop_const("c", 126)
        .assign(
            "dst",
            expr::idx_scaled("r", w) + expr::idx("c"),
            expr::shr(
                (expr::load("src", expr::idx_scaled("r", w) + expr::idx("c"))
                    + expr::load("src", expr::idx_scaled("r", w) + expr::idx("c").offset(1))
                    + expr::load("src", expr::idx_scaled("r", w) + expr::idx("c").offset(2)))
                    + (expr::load("src", expr::idx_scaled("r", w) + expr::idx("c").offset(w))
                        + expr::load(
                            "src",
                            expr::idx_scaled("r", w) + expr::idx("c").offset(w + 1),
                        )
                        + expr::load(
                            "src",
                            expr::idx_scaled("r", w) + expr::idx("c").offset(w + 2),
                        ))
                    + (expr::load(
                        "src",
                        expr::idx_scaled("r", w) + expr::idx("c").offset(2 * w),
                    ) + expr::load(
                        "src",
                        expr::idx_scaled("r", w) + expr::idx("c").offset(2 * w + 1),
                    ) + expr::load(
                        "src",
                        expr::idx_scaled("r", w) + expr::idx("c").offset(2 * w + 2),
                    )),
                3,
            ),
        )
        .build()
        .expect("blur is well formed")
}

/// Frame accumulation: `acc[i] += a[i]`.
pub fn accumulate() -> Kernel {
    base("accumulate")
        .array_input("frame", PIXELS)
        .array_output("acc", PIXELS)
        .loop_const("t", 4)
        .loop_const("i", PIXELS / 4)
        .accum("acc", expr::idx("i"), expr::load("frame", expr::idx("i")))
        .build()
        .expect("accumulate is well formed")
}

/// Squared accumulation: `acc[i] += a[i] * a[i]`.
pub fn acc_sqr() -> Kernel {
    base("acc-sqr")
        .array_input("frame", PIXELS)
        .array_output("acc", PIXELS)
        .loop_const("t", 4)
        .loop_const("i", PIXELS / 4)
        .accum(
            "acc",
            expr::idx("i"),
            expr::load("frame", expr::idx("i")) * expr::load("frame", expr::idx("i")),
        )
        .build()
        .expect("acc-sqr is well formed")
}

/// Reduction to the maximum pixel value (three arrays in Table II: two
/// inputs and the running maximum).
pub fn vecmax() -> Kernel {
    base("vecmax")
        .array_input("a", PIXELS)
        .array_input("b", PIXELS)
        .array_output("m", 1)
        .loop_const("i", PIXELS)
        .accum(
            "m",
            expr::idx_const(0),
            expr::max(
                expr::load("a", expr::idx("i")),
                expr::load("b", expr::idx("i")),
            ),
        )
        .build()
        .expect("vecmax is well formed")
}

/// Weighted accumulation: `acc[i] = (a[i]*w + acc[i]*(256-w)) >> 8`.
pub fn acc_weight() -> Kernel {
    base("acc-weight")
        .array_input("frame", PIXELS)
        .array_input("wts", 2)
        .array_output("acc", PIXELS)
        .loop_const("t", 4)
        .loop_const("i", PIXELS / 4)
        .assign(
            "acc",
            expr::idx("i"),
            expr::shr(
                expr::load("frame", expr::idx("i")) * expr::load("wts", expr::idx_const(0))
                    + expr::load("acc", expr::idx("i")) * expr::load("wts", expr::idx_const(1)),
                8,
            ),
        )
        .build()
        .expect("acc-weight is well formed")
}

/// Bit-depth conversion with rounding: `c[i] = (a[i] + bias) >> 8`.
pub fn convert_bit() -> Kernel {
    base("convert-bit")
        .array_input("src16", PIXELS)
        .array_output("dst8", PIXELS)
        .loop_const("i", PIXELS)
        .assign(
            "dst8",
            expr::idx("i"),
            expr::shr(expr::load("src16", expr::idx("i")) + expr::lit(128.0), 8),
        )
        .build()
        .expect("convert-bit is well formed")
}

/// Horizontal + vertical derivative (Sobel-like), a sliding-window kernel
/// over 130-wide rows (Table II lists 130^2 x 4).
pub fn derivative() -> Kernel {
    let w: i64 = 130;
    base("derivative")
        .array_input("src", (130 * 130 * 4) as u64)
        .array_output("dx", PIXELS)
        .loop_const("r", 4 * 128)
        .loop_const("c", 128)
        .assign(
            "dx",
            expr::idx_scaled("r", 128) + expr::idx("c"),
            expr::shr(
                (expr::load("src", expr::idx_scaled("r", w) + expr::idx("c").offset(2))
                    - expr::load("src", expr::idx_scaled("r", w) + expr::idx("c")))
                    * expr::lit(2.0)
                    + (expr::load(
                        "src",
                        expr::idx_scaled("r", w) + expr::idx("c").offset(2 * w + 2),
                    ) - expr::load(
                        "src",
                        expr::idx_scaled("r", w) + expr::idx("c").offset(2 * w),
                    )) * expr::lit(2.0)
                    + (expr::load(
                        "src",
                        expr::idx_scaled("r", w) + expr::idx("c").offset(w + 2),
                    ) - expr::load("src", expr::idx_scaled("r", w) + expr::idx("c").offset(w))),
                2,
            ),
        )
        .build()
        .expect("derivative is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use overgen_ir::Op;

    #[test]
    fn channel_ext_is_pure_movement() {
        let k = channel_ext();
        assert_eq!(k.count_op(Op::Mul), 0);
        assert_eq!(k.count_op(Op::Add), 0);
        assert!(k.traits().strided_innermost);
    }

    #[test]
    fn bgr2grey_ops() {
        let k = bgr2grey();
        assert_eq!(k.count_op(Op::Mul), 3);
        assert_eq!(k.count_op(Op::Add), 2);
        assert!(k.traits().strided_innermost);
    }

    #[test]
    fn window_kernels_slide() {
        assert!(blur().traits().sliding_window);
        assert!(derivative().traits().sliding_window);
        assert_eq!(blur().count_op(Op::Add), 8);
    }

    #[test]
    fn reductions_accumulate() {
        assert!(accumulate().body()[0].accumulate);
        assert!(vecmax().body()[0].accumulate);
        assert_eq!(acc_sqr().count_op(Op::Mul), 1);
    }
}
