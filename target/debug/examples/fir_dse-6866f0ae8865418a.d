/root/repo/target/debug/examples/fir_dse-6866f0ae8865418a.d: examples/fir_dse.rs

/root/repo/target/debug/examples/fir_dse-6866f0ae8865418a: examples/fir_dse.rs

examples/fir_dse.rs:
