/root/repo/target/debug/examples/quickstart-55966511e09aad69.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-55966511e09aad69: examples/quickstart.rs

examples/quickstart.rs:
