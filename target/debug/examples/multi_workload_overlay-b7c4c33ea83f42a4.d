/root/repo/target/debug/examples/multi_workload_overlay-b7c4c33ea83f42a4.d: examples/multi_workload_overlay.rs

/root/repo/target/debug/examples/multi_workload_overlay-b7c4c33ea83f42a4: examples/multi_workload_overlay.rs

examples/multi_workload_overlay.rs:
