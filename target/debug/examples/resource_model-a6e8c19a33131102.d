/root/repo/target/debug/examples/resource_model-a6e8c19a33131102.d: examples/resource_model.rs

/root/repo/target/debug/examples/resource_model-a6e8c19a33131102: examples/resource_model.rs

examples/resource_model.rs:
