/root/repo/target/debug/deps/fig15_dse_time-b0a9ead946849b69.d: crates/bench/src/bin/fig15_dse_time.rs

/root/repo/target/debug/deps/fig15_dse_time-b0a9ead946849b69: crates/bench/src/bin/fig15_dse_time.rs

crates/bench/src/bin/fig15_dse_time.rs:
