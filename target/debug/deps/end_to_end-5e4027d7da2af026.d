/root/repo/target/debug/deps/end_to_end-5e4027d7da2af026.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-5e4027d7da2af026: tests/end_to_end.rs

tests/end_to_end.rs:
