/root/repo/target/debug/deps/fig14_kernel_tuning-c9b76d05fc2592e1.d: crates/bench/src/bin/fig14_kernel_tuning.rs

/root/repo/target/debug/deps/fig14_kernel_tuning-c9b76d05fc2592e1: crates/bench/src/bin/fig14_kernel_tuning.rs

crates/bench/src/bin/fig14_kernel_tuning.rs:
