/root/repo/target/debug/deps/fig20_schedule_preserving-04f3eb333a3627d0.d: crates/bench/src/bin/fig20_schedule_preserving.rs

/root/repo/target/debug/deps/fig20_schedule_preserving-04f3eb333a3627d0: crates/bench/src/bin/fig20_schedule_preserving.rs

crates/bench/src/bin/fig20_schedule_preserving.rs:
