/root/repo/target/debug/deps/fig17_leave_one_out-2d6286c99525ccde.d: crates/bench/src/bin/fig17_leave_one_out.rs

/root/repo/target/debug/deps/fig17_leave_one_out-2d6286c99525ccde: crates/bench/src/bin/fig17_leave_one_out.rs

crates/bench/src/bin/fig17_leave_one_out.rs:
