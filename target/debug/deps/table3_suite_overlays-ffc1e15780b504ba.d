/root/repo/target/debug/deps/table3_suite_overlays-ffc1e15780b504ba.d: crates/bench/src/bin/table3_suite_overlays.rs

/root/repo/target/debug/deps/table3_suite_overlays-ffc1e15780b504ba: crates/bench/src/bin/table3_suite_overlays.rs

crates/bench/src/bin/table3_suite_overlays.rs:
