/root/repo/target/debug/deps/overgen_model-b79bb06127653dd3.d: crates/model/src/lib.rs crates/model/src/dataset.rs crates/model/src/estimate.rs crates/model/src/mlp.rs crates/model/src/perf.rs crates/model/src/resources.rs crates/model/src/synthesis.rs crates/model/src/time.rs

/root/repo/target/debug/deps/libovergen_model-b79bb06127653dd3.rlib: crates/model/src/lib.rs crates/model/src/dataset.rs crates/model/src/estimate.rs crates/model/src/mlp.rs crates/model/src/perf.rs crates/model/src/resources.rs crates/model/src/synthesis.rs crates/model/src/time.rs

/root/repo/target/debug/deps/libovergen_model-b79bb06127653dd3.rmeta: crates/model/src/lib.rs crates/model/src/dataset.rs crates/model/src/estimate.rs crates/model/src/mlp.rs crates/model/src/perf.rs crates/model/src/resources.rs crates/model/src/synthesis.rs crates/model/src/time.rs

crates/model/src/lib.rs:
crates/model/src/dataset.rs:
crates/model/src/estimate.rs:
crates/model/src/mlp.rs:
crates/model/src/perf.rs:
crates/model/src/resources.rs:
crates/model/src/synthesis.rs:
crates/model/src/time.rs:
