/root/repo/target/debug/deps/fig15_dse_time-50c3ee81bec8e32b.d: crates/bench/src/bin/fig15_dse_time.rs

/root/repo/target/debug/deps/fig15_dse_time-50c3ee81bec8e32b: crates/bench/src/bin/fig15_dse_time.rs

crates/bench/src/bin/fig15_dse_time.rs:
