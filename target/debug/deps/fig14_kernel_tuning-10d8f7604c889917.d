/root/repo/target/debug/deps/fig14_kernel_tuning-10d8f7604c889917.d: crates/bench/src/bin/fig14_kernel_tuning.rs

/root/repo/target/debug/deps/fig14_kernel_tuning-10d8f7604c889917: crates/bench/src/bin/fig14_kernel_tuning.rs

crates/bench/src/bin/fig14_kernel_tuning.rs:
