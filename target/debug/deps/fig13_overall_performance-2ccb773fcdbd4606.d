/root/repo/target/debug/deps/fig13_overall_performance-2ccb773fcdbd4606.d: crates/bench/src/bin/fig13_overall_performance.rs

/root/repo/target/debug/deps/fig13_overall_performance-2ccb773fcdbd4606: crates/bench/src/bin/fig13_overall_performance.rs

crates/bench/src/bin/fig13_overall_performance.rs:
