/root/repo/target/debug/deps/overgen_sim-047cd03a7e4110da.d: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/report.rs

/root/repo/target/debug/deps/overgen_sim-047cd03a7e4110da: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/report.rs

crates/sim/src/lib.rs:
crates/sim/src/flow.rs:
crates/sim/src/report.rs:
