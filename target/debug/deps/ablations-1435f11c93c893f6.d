/root/repo/target/debug/deps/ablations-1435f11c93c893f6.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-1435f11c93c893f6: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
