/root/repo/target/debug/deps/overgen_adg-bf4f7a3be8566746.d: crates/adg/src/lib.rs crates/adg/src/fingerprint.rs crates/adg/src/graph.rs crates/adg/src/node.rs crates/adg/src/summary.rs crates/adg/src/system.rs crates/adg/src/topology.rs

/root/repo/target/debug/deps/libovergen_adg-bf4f7a3be8566746.rlib: crates/adg/src/lib.rs crates/adg/src/fingerprint.rs crates/adg/src/graph.rs crates/adg/src/node.rs crates/adg/src/summary.rs crates/adg/src/system.rs crates/adg/src/topology.rs

/root/repo/target/debug/deps/libovergen_adg-bf4f7a3be8566746.rmeta: crates/adg/src/lib.rs crates/adg/src/fingerprint.rs crates/adg/src/graph.rs crates/adg/src/node.rs crates/adg/src/summary.rs crates/adg/src/system.rs crates/adg/src/topology.rs

crates/adg/src/lib.rs:
crates/adg/src/fingerprint.rs:
crates/adg/src/graph.rs:
crates/adg/src/node.rs:
crates/adg/src/summary.rs:
crates/adg/src/system.rs:
crates/adg/src/topology.rs:
