/root/repo/target/debug/deps/overgen_ir-bac5482a1c4815ef.d: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/dtype.rs crates/ir/src/expression.rs crates/ir/src/kernel.rs crates/ir/src/loops.rs crates/ir/src/op.rs crates/ir/src/stmt.rs

/root/repo/target/debug/deps/overgen_ir-bac5482a1c4815ef: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/dtype.rs crates/ir/src/expression.rs crates/ir/src/kernel.rs crates/ir/src/loops.rs crates/ir/src/op.rs crates/ir/src/stmt.rs

crates/ir/src/lib.rs:
crates/ir/src/affine.rs:
crates/ir/src/dtype.rs:
crates/ir/src/expression.rs:
crates/ir/src/kernel.rs:
crates/ir/src/loops.rs:
crates/ir/src/op.rs:
crates/ir/src/stmt.rs:
