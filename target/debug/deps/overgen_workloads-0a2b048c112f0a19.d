/root/repo/target/debug/deps/overgen_workloads-0a2b048c112f0a19.d: crates/workloads/src/lib.rs crates/workloads/src/dsp.rs crates/workloads/src/machsuite.rs crates/workloads/src/tuned.rs crates/workloads/src/vision.rs

/root/repo/target/debug/deps/libovergen_workloads-0a2b048c112f0a19.rlib: crates/workloads/src/lib.rs crates/workloads/src/dsp.rs crates/workloads/src/machsuite.rs crates/workloads/src/tuned.rs crates/workloads/src/vision.rs

/root/repo/target/debug/deps/libovergen_workloads-0a2b048c112f0a19.rmeta: crates/workloads/src/lib.rs crates/workloads/src/dsp.rs crates/workloads/src/machsuite.rs crates/workloads/src/tuned.rs crates/workloads/src/vision.rs

crates/workloads/src/lib.rs:
crates/workloads/src/dsp.rs:
crates/workloads/src/machsuite.rs:
crates/workloads/src/tuned.rs:
crates/workloads/src/vision.rs:
