/root/repo/target/debug/deps/overgen_scheduler-99a8683878103d51.d: crates/scheduler/src/lib.rs crates/scheduler/src/place.rs crates/scheduler/src/repair.rs crates/scheduler/src/types.rs

/root/repo/target/debug/deps/overgen_scheduler-99a8683878103d51: crates/scheduler/src/lib.rs crates/scheduler/src/place.rs crates/scheduler/src/repair.rs crates/scheduler/src/types.rs

crates/scheduler/src/lib.rs:
crates/scheduler/src/place.rs:
crates/scheduler/src/repair.rs:
crates/scheduler/src/types.rs:
