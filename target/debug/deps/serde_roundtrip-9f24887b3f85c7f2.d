/root/repo/target/debug/deps/serde_roundtrip-9f24887b3f85c7f2.d: tests/serde_roundtrip.rs

/root/repo/target/debug/deps/serde_roundtrip-9f24887b3f85c7f2: tests/serde_roundtrip.rs

tests/serde_roundtrip.rs:
