/root/repo/target/debug/deps/fig18_incremental-55155ec0adc599bb.d: crates/bench/src/bin/fig18_incremental.rs

/root/repo/target/debug/deps/fig18_incremental-55155ec0adc599bb: crates/bench/src/bin/fig18_incremental.rs

crates/bench/src/bin/fig18_incremental.rs:
