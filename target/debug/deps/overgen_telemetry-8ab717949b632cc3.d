/root/repo/target/debug/deps/overgen_telemetry-8ab717949b632cc3.d: crates/telemetry/src/lib.rs crates/telemetry/src/capture.rs crates/telemetry/src/clock.rs crates/telemetry/src/fs.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/rng.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libovergen_telemetry-8ab717949b632cc3.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/capture.rs crates/telemetry/src/clock.rs crates/telemetry/src/fs.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/rng.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libovergen_telemetry-8ab717949b632cc3.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/capture.rs crates/telemetry/src/clock.rs crates/telemetry/src/fs.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/rng.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/capture.rs:
crates/telemetry/src/clock.rs:
crates/telemetry/src/fs.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/rng.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/span.rs:
