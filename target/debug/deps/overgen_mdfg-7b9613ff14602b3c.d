/root/repo/target/debug/deps/overgen_mdfg-7b9613ff14602b3c.d: crates/mdfg/src/lib.rs crates/mdfg/src/graph.rs crates/mdfg/src/node.rs crates/mdfg/src/reuse.rs

/root/repo/target/debug/deps/libovergen_mdfg-7b9613ff14602b3c.rlib: crates/mdfg/src/lib.rs crates/mdfg/src/graph.rs crates/mdfg/src/node.rs crates/mdfg/src/reuse.rs

/root/repo/target/debug/deps/libovergen_mdfg-7b9613ff14602b3c.rmeta: crates/mdfg/src/lib.rs crates/mdfg/src/graph.rs crates/mdfg/src/node.rs crates/mdfg/src/reuse.rs

crates/mdfg/src/lib.rs:
crates/mdfg/src/graph.rs:
crates/mdfg/src/node.rs:
crates/mdfg/src/reuse.rs:
