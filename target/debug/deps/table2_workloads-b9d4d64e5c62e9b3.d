/root/repo/target/debug/deps/table2_workloads-b9d4d64e5c62e9b3.d: crates/bench/src/bin/table2_workloads.rs

/root/repo/target/debug/deps/table2_workloads-b9d4d64e5c62e9b3: crates/bench/src/bin/table2_workloads.rs

crates/bench/src/bin/table2_workloads.rs:
