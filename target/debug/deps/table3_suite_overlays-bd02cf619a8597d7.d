/root/repo/target/debug/deps/table3_suite_overlays-bd02cf619a8597d7.d: crates/bench/src/bin/table3_suite_overlays.rs

/root/repo/target/debug/deps/table3_suite_overlays-bd02cf619a8597d7: crates/bench/src/bin/table3_suite_overlays.rs

crates/bench/src/bin/table3_suite_overlays.rs:
