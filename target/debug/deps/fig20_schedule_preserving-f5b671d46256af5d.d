/root/repo/target/debug/deps/fig20_schedule_preserving-f5b671d46256af5d.d: crates/bench/src/bin/fig20_schedule_preserving.rs

/root/repo/target/debug/deps/fig20_schedule_preserving-f5b671d46256af5d: crates/bench/src/bin/fig20_schedule_preserving.rs

crates/bench/src/bin/fig20_schedule_preserving.rs:
