/root/repo/target/debug/deps/fig17_leave_one_out-66b8080c217e6be8.d: crates/bench/src/bin/fig17_leave_one_out.rs

/root/repo/target/debug/deps/fig17_leave_one_out-66b8080c217e6be8: crates/bench/src/bin/fig17_leave_one_out.rs

crates/bench/src/bin/fig17_leave_one_out.rs:
