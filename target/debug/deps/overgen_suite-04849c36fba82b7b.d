/root/repo/target/debug/deps/overgen_suite-04849c36fba82b7b.d: src/lib.rs

/root/repo/target/debug/deps/libovergen_suite-04849c36fba82b7b.rlib: src/lib.rs

/root/repo/target/debug/deps/libovergen_suite-04849c36fba82b7b.rmeta: src/lib.rs

src/lib.rs:
