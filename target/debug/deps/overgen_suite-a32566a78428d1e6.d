/root/repo/target/debug/deps/overgen_suite-a32566a78428d1e6.d: src/lib.rs

/root/repo/target/debug/deps/overgen_suite-a32566a78428d1e6: src/lib.rs

src/lib.rs:
