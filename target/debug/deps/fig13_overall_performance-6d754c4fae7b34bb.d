/root/repo/target/debug/deps/fig13_overall_performance-6d754c4fae7b34bb.d: crates/bench/src/bin/fig13_overall_performance.rs

/root/repo/target/debug/deps/fig13_overall_performance-6d754c4fae7b34bb: crates/bench/src/bin/fig13_overall_performance.rs

crates/bench/src/bin/fig13_overall_performance.rs:
