/root/repo/target/debug/deps/ablations-f8f04d9fc05cfb1b.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-f8f04d9fc05cfb1b: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
