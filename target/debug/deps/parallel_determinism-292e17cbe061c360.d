/root/repo/target/debug/deps/parallel_determinism-292e17cbe061c360.d: tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-292e17cbe061c360: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
