/root/repo/target/debug/deps/overgen_sim-f88e35ee5efcbd6d.d: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/report.rs

/root/repo/target/debug/deps/libovergen_sim-f88e35ee5efcbd6d.rlib: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/report.rs

/root/repo/target/debug/deps/libovergen_sim-f88e35ee5efcbd6d.rmeta: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/report.rs

crates/sim/src/lib.rs:
crates/sim/src/flow.rs:
crates/sim/src/report.rs:
