/root/repo/target/debug/deps/fig16_resource_breakdown-0de3ae57fe7f60bd.d: crates/bench/src/bin/fig16_resource_breakdown.rs

/root/repo/target/debug/deps/fig16_resource_breakdown-0de3ae57fe7f60bd: crates/bench/src/bin/fig16_resource_breakdown.rs

crates/bench/src/bin/fig16_resource_breakdown.rs:
