/root/repo/target/debug/deps/dbg_props-0fe07764ba90382e.d: crates/bench/src/bin/dbg_props.rs

/root/repo/target/debug/deps/dbg_props-0fe07764ba90382e: crates/bench/src/bin/dbg_props.rs

crates/bench/src/bin/dbg_props.rs:
