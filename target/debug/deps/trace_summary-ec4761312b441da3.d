/root/repo/target/debug/deps/trace_summary-ec4761312b441da3.d: crates/bench/src/bin/trace_summary.rs

/root/repo/target/debug/deps/trace_summary-ec4761312b441da3: crates/bench/src/bin/trace_summary.rs

crates/bench/src/bin/trace_summary.rs:
