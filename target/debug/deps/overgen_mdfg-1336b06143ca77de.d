/root/repo/target/debug/deps/overgen_mdfg-1336b06143ca77de.d: crates/mdfg/src/lib.rs crates/mdfg/src/graph.rs crates/mdfg/src/node.rs crates/mdfg/src/reuse.rs

/root/repo/target/debug/deps/overgen_mdfg-1336b06143ca77de: crates/mdfg/src/lib.rs crates/mdfg/src/graph.rs crates/mdfg/src/node.rs crates/mdfg/src/reuse.rs

crates/mdfg/src/lib.rs:
crates/mdfg/src/graph.rs:
crates/mdfg/src/node.rs:
crates/mdfg/src/reuse.rs:
