/root/repo/target/debug/deps/overgen_compiler-44a5d722dc5ca8cb.d: crates/compiler/src/lib.rs crates/compiler/src/lower.rs crates/compiler/src/reuse.rs crates/compiler/src/variants.rs

/root/repo/target/debug/deps/libovergen_compiler-44a5d722dc5ca8cb.rlib: crates/compiler/src/lib.rs crates/compiler/src/lower.rs crates/compiler/src/reuse.rs crates/compiler/src/variants.rs

/root/repo/target/debug/deps/libovergen_compiler-44a5d722dc5ca8cb.rmeta: crates/compiler/src/lib.rs crates/compiler/src/lower.rs crates/compiler/src/reuse.rs crates/compiler/src/variants.rs

crates/compiler/src/lib.rs:
crates/compiler/src/lower.rs:
crates/compiler/src/reuse.rs:
crates/compiler/src/variants.rs:
