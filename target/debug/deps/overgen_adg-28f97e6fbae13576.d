/root/repo/target/debug/deps/overgen_adg-28f97e6fbae13576.d: crates/adg/src/lib.rs crates/adg/src/fingerprint.rs crates/adg/src/graph.rs crates/adg/src/node.rs crates/adg/src/summary.rs crates/adg/src/system.rs crates/adg/src/topology.rs

/root/repo/target/debug/deps/overgen_adg-28f97e6fbae13576: crates/adg/src/lib.rs crates/adg/src/fingerprint.rs crates/adg/src/graph.rs crates/adg/src/node.rs crates/adg/src/summary.rs crates/adg/src/system.rs crates/adg/src/topology.rs

crates/adg/src/lib.rs:
crates/adg/src/fingerprint.rs:
crates/adg/src/graph.rs:
crates/adg/src/node.rs:
crates/adg/src/summary.rs:
crates/adg/src/system.rs:
crates/adg/src/topology.rs:
