/root/repo/target/debug/deps/telemetry_trace-cdba5c87bb0a6818.d: tests/telemetry_trace.rs

/root/repo/target/debug/deps/telemetry_trace-cdba5c87bb0a6818: tests/telemetry_trace.rs

tests/telemetry_trace.rs:
