/root/repo/target/debug/deps/overgen_dse-5962f83dbe3f82e6.d: crates/dse/src/lib.rs crates/dse/src/cache.rs crates/dse/src/engine.rs crates/dse/src/pool.rs crates/dse/src/system.rs crates/dse/src/transforms.rs

/root/repo/target/debug/deps/overgen_dse-5962f83dbe3f82e6: crates/dse/src/lib.rs crates/dse/src/cache.rs crates/dse/src/engine.rs crates/dse/src/pool.rs crates/dse/src/system.rs crates/dse/src/transforms.rs

crates/dse/src/lib.rs:
crates/dse/src/cache.rs:
crates/dse/src/engine.rs:
crates/dse/src/pool.rs:
crates/dse/src/system.rs:
crates/dse/src/transforms.rs:
