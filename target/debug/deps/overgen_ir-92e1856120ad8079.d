/root/repo/target/debug/deps/overgen_ir-92e1856120ad8079.d: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/dtype.rs crates/ir/src/expression.rs crates/ir/src/kernel.rs crates/ir/src/loops.rs crates/ir/src/op.rs crates/ir/src/stmt.rs

/root/repo/target/debug/deps/libovergen_ir-92e1856120ad8079.rlib: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/dtype.rs crates/ir/src/expression.rs crates/ir/src/kernel.rs crates/ir/src/loops.rs crates/ir/src/op.rs crates/ir/src/stmt.rs

/root/repo/target/debug/deps/libovergen_ir-92e1856120ad8079.rmeta: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/dtype.rs crates/ir/src/expression.rs crates/ir/src/kernel.rs crates/ir/src/loops.rs crates/ir/src/op.rs crates/ir/src/stmt.rs

crates/ir/src/lib.rs:
crates/ir/src/affine.rs:
crates/ir/src/dtype.rs:
crates/ir/src/expression.rs:
crates/ir/src/kernel.rs:
crates/ir/src/loops.rs:
crates/ir/src/op.rs:
crates/ir/src/stmt.rs:
