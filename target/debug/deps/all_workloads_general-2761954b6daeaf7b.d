/root/repo/target/debug/deps/all_workloads_general-2761954b6daeaf7b.d: tests/all_workloads_general.rs

/root/repo/target/debug/deps/all_workloads_general-2761954b6daeaf7b: tests/all_workloads_general.rs

tests/all_workloads_general.rs:
