/root/repo/target/debug/deps/fig16_resource_breakdown-ad1ee642a7091f1c.d: crates/bench/src/bin/fig16_resource_breakdown.rs

/root/repo/target/debug/deps/fig16_resource_breakdown-ad1ee642a7091f1c: crates/bench/src/bin/fig16_resource_breakdown.rs

crates/bench/src/bin/fig16_resource_breakdown.rs:
