/root/repo/target/debug/deps/table4_hls_ii-92c14383b402f280.d: crates/bench/src/bin/table4_hls_ii.rs

/root/repo/target/debug/deps/table4_hls_ii-92c14383b402f280: crates/bench/src/bin/table4_hls_ii.rs

crates/bench/src/bin/table4_hls_ii.rs:
