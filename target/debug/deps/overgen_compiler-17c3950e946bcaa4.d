/root/repo/target/debug/deps/overgen_compiler-17c3950e946bcaa4.d: crates/compiler/src/lib.rs crates/compiler/src/lower.rs crates/compiler/src/reuse.rs crates/compiler/src/variants.rs

/root/repo/target/debug/deps/overgen_compiler-17c3950e946bcaa4: crates/compiler/src/lib.rs crates/compiler/src/lower.rs crates/compiler/src/reuse.rs crates/compiler/src/variants.rs

crates/compiler/src/lib.rs:
crates/compiler/src/lower.rs:
crates/compiler/src/reuse.rs:
crates/compiler/src/variants.rs:
