/root/repo/target/debug/deps/overgen_dse-4b1f9ca2a1d72d7c.d: crates/dse/src/lib.rs crates/dse/src/cache.rs crates/dse/src/engine.rs crates/dse/src/pool.rs crates/dse/src/system.rs crates/dse/src/transforms.rs

/root/repo/target/debug/deps/libovergen_dse-4b1f9ca2a1d72d7c.rlib: crates/dse/src/lib.rs crates/dse/src/cache.rs crates/dse/src/engine.rs crates/dse/src/pool.rs crates/dse/src/system.rs crates/dse/src/transforms.rs

/root/repo/target/debug/deps/libovergen_dse-4b1f9ca2a1d72d7c.rmeta: crates/dse/src/lib.rs crates/dse/src/cache.rs crates/dse/src/engine.rs crates/dse/src/pool.rs crates/dse/src/system.rs crates/dse/src/transforms.rs

crates/dse/src/lib.rs:
crates/dse/src/cache.rs:
crates/dse/src/engine.rs:
crates/dse/src/pool.rs:
crates/dse/src/system.rs:
crates/dse/src/transforms.rs:
