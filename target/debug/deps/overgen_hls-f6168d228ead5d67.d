/root/repo/target/debug/deps/overgen_hls-f6168d228ead5d67.d: crates/hls/src/lib.rs crates/hls/src/design.rs crates/hls/src/explorer.rs crates/hls/src/ii.rs

/root/repo/target/debug/deps/libovergen_hls-f6168d228ead5d67.rlib: crates/hls/src/lib.rs crates/hls/src/design.rs crates/hls/src/explorer.rs crates/hls/src/ii.rs

/root/repo/target/debug/deps/libovergen_hls-f6168d228ead5d67.rmeta: crates/hls/src/lib.rs crates/hls/src/design.rs crates/hls/src/explorer.rs crates/hls/src/ii.rs

crates/hls/src/lib.rs:
crates/hls/src/design.rs:
crates/hls/src/explorer.rs:
crates/hls/src/ii.rs:
