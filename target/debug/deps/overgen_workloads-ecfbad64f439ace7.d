/root/repo/target/debug/deps/overgen_workloads-ecfbad64f439ace7.d: crates/workloads/src/lib.rs crates/workloads/src/dsp.rs crates/workloads/src/machsuite.rs crates/workloads/src/tuned.rs crates/workloads/src/vision.rs

/root/repo/target/debug/deps/overgen_workloads-ecfbad64f439ace7: crates/workloads/src/lib.rs crates/workloads/src/dsp.rs crates/workloads/src/machsuite.rs crates/workloads/src/tuned.rs crates/workloads/src/vision.rs

crates/workloads/src/lib.rs:
crates/workloads/src/dsp.rs:
crates/workloads/src/machsuite.rs:
crates/workloads/src/tuned.rs:
crates/workloads/src/vision.rs:
