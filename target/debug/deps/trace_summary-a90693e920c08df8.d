/root/repo/target/debug/deps/trace_summary-a90693e920c08df8.d: crates/bench/src/bin/trace_summary.rs

/root/repo/target/debug/deps/trace_summary-a90693e920c08df8: crates/bench/src/bin/trace_summary.rs

crates/bench/src/bin/trace_summary.rs:
