/root/repo/target/debug/deps/fig19_dram_channels-ff384611517f49fd.d: crates/bench/src/bin/fig19_dram_channels.rs

/root/repo/target/debug/deps/fig19_dram_channels-ff384611517f49fd: crates/bench/src/bin/fig19_dram_channels.rs

crates/bench/src/bin/fig19_dram_channels.rs:
