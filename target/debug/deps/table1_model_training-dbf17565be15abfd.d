/root/repo/target/debug/deps/table1_model_training-dbf17565be15abfd.d: crates/bench/src/bin/table1_model_training.rs

/root/repo/target/debug/deps/table1_model_training-dbf17565be15abfd: crates/bench/src/bin/table1_model_training.rs

crates/bench/src/bin/table1_model_training.rs:
