/root/repo/target/debug/deps/properties-1ac0b51d3c05ec1e.d: tests/properties.rs

/root/repo/target/debug/deps/properties-1ac0b51d3c05ec1e: tests/properties.rs

tests/properties.rs:
