/root/repo/target/debug/deps/table1_model_training-b64d94fdbbf02da2.d: crates/bench/src/bin/table1_model_training.rs

/root/repo/target/debug/deps/table1_model_training-b64d94fdbbf02da2: crates/bench/src/bin/table1_model_training.rs

crates/bench/src/bin/table1_model_training.rs:
