/root/repo/target/debug/deps/overgen-9a03317759cd26bf.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/overgen-9a03317759cd26bf: crates/core/src/lib.rs

crates/core/src/lib.rs:
