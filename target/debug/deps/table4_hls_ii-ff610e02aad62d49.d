/root/repo/target/debug/deps/table4_hls_ii-ff610e02aad62d49.d: crates/bench/src/bin/table4_hls_ii.rs

/root/repo/target/debug/deps/table4_hls_ii-ff610e02aad62d49: crates/bench/src/bin/table4_hls_ii.rs

crates/bench/src/bin/table4_hls_ii.rs:
