/root/repo/target/debug/deps/overgen-603d4dc169631076.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/libovergen-603d4dc169631076.rlib: crates/core/src/lib.rs

/root/repo/target/debug/deps/libovergen-603d4dc169631076.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
