/root/repo/target/debug/deps/fig19_dram_channels-8cf69db35c30906d.d: crates/bench/src/bin/fig19_dram_channels.rs

/root/repo/target/debug/deps/fig19_dram_channels-8cf69db35c30906d: crates/bench/src/bin/fig19_dram_channels.rs

crates/bench/src/bin/fig19_dram_channels.rs:
