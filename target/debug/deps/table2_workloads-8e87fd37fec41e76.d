/root/repo/target/debug/deps/table2_workloads-8e87fd37fec41e76.d: crates/bench/src/bin/table2_workloads.rs

/root/repo/target/debug/deps/table2_workloads-8e87fd37fec41e76: crates/bench/src/bin/table2_workloads.rs

crates/bench/src/bin/table2_workloads.rs:
