/root/repo/target/debug/deps/overgen_hls-ccd38e919994fde9.d: crates/hls/src/lib.rs crates/hls/src/design.rs crates/hls/src/explorer.rs crates/hls/src/ii.rs

/root/repo/target/debug/deps/overgen_hls-ccd38e919994fde9: crates/hls/src/lib.rs crates/hls/src/design.rs crates/hls/src/explorer.rs crates/hls/src/ii.rs

crates/hls/src/lib.rs:
crates/hls/src/design.rs:
crates/hls/src/explorer.rs:
crates/hls/src/ii.rs:
