/root/repo/target/debug/deps/fig18_incremental-0650c397c8f9f42c.d: crates/bench/src/bin/fig18_incremental.rs

/root/repo/target/debug/deps/fig18_incremental-0650c397c8f9f42c: crates/bench/src/bin/fig18_incremental.rs

crates/bench/src/bin/fig18_incremental.rs:
