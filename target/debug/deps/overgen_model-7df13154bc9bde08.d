/root/repo/target/debug/deps/overgen_model-7df13154bc9bde08.d: crates/model/src/lib.rs crates/model/src/dataset.rs crates/model/src/estimate.rs crates/model/src/mlp.rs crates/model/src/perf.rs crates/model/src/resources.rs crates/model/src/synthesis.rs crates/model/src/time.rs

/root/repo/target/debug/deps/overgen_model-7df13154bc9bde08: crates/model/src/lib.rs crates/model/src/dataset.rs crates/model/src/estimate.rs crates/model/src/mlp.rs crates/model/src/perf.rs crates/model/src/resources.rs crates/model/src/synthesis.rs crates/model/src/time.rs

crates/model/src/lib.rs:
crates/model/src/dataset.rs:
crates/model/src/estimate.rs:
crates/model/src/mlp.rs:
crates/model/src/perf.rs:
crates/model/src/resources.rs:
crates/model/src/synthesis.rs:
crates/model/src/time.rs:
