/root/repo/target/debug/deps/overgen_scheduler-0ea286dabb48e563.d: crates/scheduler/src/lib.rs crates/scheduler/src/place.rs crates/scheduler/src/repair.rs crates/scheduler/src/types.rs

/root/repo/target/debug/deps/libovergen_scheduler-0ea286dabb48e563.rlib: crates/scheduler/src/lib.rs crates/scheduler/src/place.rs crates/scheduler/src/repair.rs crates/scheduler/src/types.rs

/root/repo/target/debug/deps/libovergen_scheduler-0ea286dabb48e563.rmeta: crates/scheduler/src/lib.rs crates/scheduler/src/place.rs crates/scheduler/src/repair.rs crates/scheduler/src/types.rs

crates/scheduler/src/lib.rs:
crates/scheduler/src/place.rs:
crates/scheduler/src/repair.rs:
crates/scheduler/src/types.rs:
