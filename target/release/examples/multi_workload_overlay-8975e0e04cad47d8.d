/root/repo/target/release/examples/multi_workload_overlay-8975e0e04cad47d8.d: examples/multi_workload_overlay.rs

/root/repo/target/release/examples/multi_workload_overlay-8975e0e04cad47d8: examples/multi_workload_overlay.rs

examples/multi_workload_overlay.rs:
