/root/repo/target/release/examples/fir_dse-e2c3c95a6dc79310.d: examples/fir_dse.rs

/root/repo/target/release/examples/fir_dse-e2c3c95a6dc79310: examples/fir_dse.rs

examples/fir_dse.rs:
