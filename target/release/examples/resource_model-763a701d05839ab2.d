/root/repo/target/release/examples/resource_model-763a701d05839ab2.d: examples/resource_model.rs

/root/repo/target/release/examples/resource_model-763a701d05839ab2: examples/resource_model.rs

examples/resource_model.rs:
