/root/repo/target/release/examples/quickstart-2b35c4b2b05abf7e.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-2b35c4b2b05abf7e: examples/quickstart.rs

examples/quickstart.rs:
