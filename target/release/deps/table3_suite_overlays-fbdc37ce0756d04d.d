/root/repo/target/release/deps/table3_suite_overlays-fbdc37ce0756d04d.d: crates/bench/src/bin/table3_suite_overlays.rs

/root/repo/target/release/deps/table3_suite_overlays-fbdc37ce0756d04d: crates/bench/src/bin/table3_suite_overlays.rs

crates/bench/src/bin/table3_suite_overlays.rs:
