/root/repo/target/release/deps/telemetry_trace-056fc06df4e59836.d: tests/telemetry_trace.rs

/root/repo/target/release/deps/telemetry_trace-056fc06df4e59836: tests/telemetry_trace.rs

tests/telemetry_trace.rs:
