/root/repo/target/release/deps/overgen_suite-b5a2aca27f8db2b6.d: src/lib.rs

/root/repo/target/release/deps/libovergen_suite-b5a2aca27f8db2b6.rlib: src/lib.rs

/root/repo/target/release/deps/libovergen_suite-b5a2aca27f8db2b6.rmeta: src/lib.rs

src/lib.rs:
