/root/repo/target/release/deps/overgen_bench-f3fdb011a00bb4f3.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/fig13.rs crates/bench/src/experiments/fig14.rs crates/bench/src/experiments/fig15.rs crates/bench/src/experiments/fig16.rs crates/bench/src/experiments/fig17.rs crates/bench/src/experiments/fig18.rs crates/bench/src/experiments/fig19.rs crates/bench/src/experiments/fig20.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table3.rs crates/bench/src/experiments/table4.rs crates/bench/src/harness.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libovergen_bench-f3fdb011a00bb4f3.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/fig13.rs crates/bench/src/experiments/fig14.rs crates/bench/src/experiments/fig15.rs crates/bench/src/experiments/fig16.rs crates/bench/src/experiments/fig17.rs crates/bench/src/experiments/fig18.rs crates/bench/src/experiments/fig19.rs crates/bench/src/experiments/fig20.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table3.rs crates/bench/src/experiments/table4.rs crates/bench/src/harness.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libovergen_bench-f3fdb011a00bb4f3.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/fig13.rs crates/bench/src/experiments/fig14.rs crates/bench/src/experiments/fig15.rs crates/bench/src/experiments/fig16.rs crates/bench/src/experiments/fig17.rs crates/bench/src/experiments/fig18.rs crates/bench/src/experiments/fig19.rs crates/bench/src/experiments/fig20.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table3.rs crates/bench/src/experiments/table4.rs crates/bench/src/harness.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablations.rs:
crates/bench/src/experiments/fig13.rs:
crates/bench/src/experiments/fig14.rs:
crates/bench/src/experiments/fig15.rs:
crates/bench/src/experiments/fig16.rs:
crates/bench/src/experiments/fig17.rs:
crates/bench/src/experiments/fig18.rs:
crates/bench/src/experiments/fig19.rs:
crates/bench/src/experiments/fig20.rs:
crates/bench/src/experiments/table1.rs:
crates/bench/src/experiments/table2.rs:
crates/bench/src/experiments/table3.rs:
crates/bench/src/experiments/table4.rs:
crates/bench/src/harness.rs:
crates/bench/src/table.rs:
