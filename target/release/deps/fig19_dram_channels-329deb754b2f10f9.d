/root/repo/target/release/deps/fig19_dram_channels-329deb754b2f10f9.d: crates/bench/src/bin/fig19_dram_channels.rs

/root/repo/target/release/deps/fig19_dram_channels-329deb754b2f10f9: crates/bench/src/bin/fig19_dram_channels.rs

crates/bench/src/bin/fig19_dram_channels.rs:
