/root/repo/target/release/deps/table2_workloads-93353a38fc011b41.d: crates/bench/src/bin/table2_workloads.rs

/root/repo/target/release/deps/table2_workloads-93353a38fc011b41: crates/bench/src/bin/table2_workloads.rs

crates/bench/src/bin/table2_workloads.rs:
