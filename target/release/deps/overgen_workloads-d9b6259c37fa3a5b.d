/root/repo/target/release/deps/overgen_workloads-d9b6259c37fa3a5b.d: crates/workloads/src/lib.rs crates/workloads/src/dsp.rs crates/workloads/src/machsuite.rs crates/workloads/src/tuned.rs crates/workloads/src/vision.rs

/root/repo/target/release/deps/libovergen_workloads-d9b6259c37fa3a5b.rlib: crates/workloads/src/lib.rs crates/workloads/src/dsp.rs crates/workloads/src/machsuite.rs crates/workloads/src/tuned.rs crates/workloads/src/vision.rs

/root/repo/target/release/deps/libovergen_workloads-d9b6259c37fa3a5b.rmeta: crates/workloads/src/lib.rs crates/workloads/src/dsp.rs crates/workloads/src/machsuite.rs crates/workloads/src/tuned.rs crates/workloads/src/vision.rs

crates/workloads/src/lib.rs:
crates/workloads/src/dsp.rs:
crates/workloads/src/machsuite.rs:
crates/workloads/src/tuned.rs:
crates/workloads/src/vision.rs:
