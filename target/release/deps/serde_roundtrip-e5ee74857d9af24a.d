/root/repo/target/release/deps/serde_roundtrip-e5ee74857d9af24a.d: tests/serde_roundtrip.rs

/root/repo/target/release/deps/serde_roundtrip-e5ee74857d9af24a: tests/serde_roundtrip.rs

tests/serde_roundtrip.rs:
