/root/repo/target/release/deps/overgen_hls-d367b8de0022d010.d: crates/hls/src/lib.rs crates/hls/src/design.rs crates/hls/src/explorer.rs crates/hls/src/ii.rs

/root/repo/target/release/deps/libovergen_hls-d367b8de0022d010.rlib: crates/hls/src/lib.rs crates/hls/src/design.rs crates/hls/src/explorer.rs crates/hls/src/ii.rs

/root/repo/target/release/deps/libovergen_hls-d367b8de0022d010.rmeta: crates/hls/src/lib.rs crates/hls/src/design.rs crates/hls/src/explorer.rs crates/hls/src/ii.rs

crates/hls/src/lib.rs:
crates/hls/src/design.rs:
crates/hls/src/explorer.rs:
crates/hls/src/ii.rs:
