/root/repo/target/release/deps/overgen_compiler-48a358fe44ea33fd.d: crates/compiler/src/lib.rs crates/compiler/src/lower.rs crates/compiler/src/reuse.rs crates/compiler/src/variants.rs

/root/repo/target/release/deps/libovergen_compiler-48a358fe44ea33fd.rlib: crates/compiler/src/lib.rs crates/compiler/src/lower.rs crates/compiler/src/reuse.rs crates/compiler/src/variants.rs

/root/repo/target/release/deps/libovergen_compiler-48a358fe44ea33fd.rmeta: crates/compiler/src/lib.rs crates/compiler/src/lower.rs crates/compiler/src/reuse.rs crates/compiler/src/variants.rs

crates/compiler/src/lib.rs:
crates/compiler/src/lower.rs:
crates/compiler/src/reuse.rs:
crates/compiler/src/variants.rs:
