/root/repo/target/release/deps/overgen-2b96aa4ec3756e08.d: crates/core/src/lib.rs

/root/repo/target/release/deps/libovergen-2b96aa4ec3756e08.rlib: crates/core/src/lib.rs

/root/repo/target/release/deps/libovergen-2b96aa4ec3756e08.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
