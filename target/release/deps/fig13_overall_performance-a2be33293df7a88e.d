/root/repo/target/release/deps/fig13_overall_performance-a2be33293df7a88e.d: crates/bench/src/bin/fig13_overall_performance.rs

/root/repo/target/release/deps/fig13_overall_performance-a2be33293df7a88e: crates/bench/src/bin/fig13_overall_performance.rs

crates/bench/src/bin/fig13_overall_performance.rs:
