/root/repo/target/release/deps/fig17_leave_one_out-1208949beadc5ce6.d: crates/bench/src/bin/fig17_leave_one_out.rs

/root/repo/target/release/deps/fig17_leave_one_out-1208949beadc5ce6: crates/bench/src/bin/fig17_leave_one_out.rs

crates/bench/src/bin/fig17_leave_one_out.rs:
