/root/repo/target/release/deps/parallel_determinism-bb25a097735390a7.d: tests/parallel_determinism.rs

/root/repo/target/release/deps/parallel_determinism-bb25a097735390a7: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
