/root/repo/target/release/deps/overgen_ir-4c8a46b7b2ff608f.d: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/dtype.rs crates/ir/src/expression.rs crates/ir/src/kernel.rs crates/ir/src/loops.rs crates/ir/src/op.rs crates/ir/src/stmt.rs

/root/repo/target/release/deps/libovergen_ir-4c8a46b7b2ff608f.rlib: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/dtype.rs crates/ir/src/expression.rs crates/ir/src/kernel.rs crates/ir/src/loops.rs crates/ir/src/op.rs crates/ir/src/stmt.rs

/root/repo/target/release/deps/libovergen_ir-4c8a46b7b2ff608f.rmeta: crates/ir/src/lib.rs crates/ir/src/affine.rs crates/ir/src/dtype.rs crates/ir/src/expression.rs crates/ir/src/kernel.rs crates/ir/src/loops.rs crates/ir/src/op.rs crates/ir/src/stmt.rs

crates/ir/src/lib.rs:
crates/ir/src/affine.rs:
crates/ir/src/dtype.rs:
crates/ir/src/expression.rs:
crates/ir/src/kernel.rs:
crates/ir/src/loops.rs:
crates/ir/src/op.rs:
crates/ir/src/stmt.rs:
