/root/repo/target/release/deps/overgen_telemetry-452a5a5f5f6a3e39.d: crates/telemetry/src/lib.rs crates/telemetry/src/capture.rs crates/telemetry/src/clock.rs crates/telemetry/src/fs.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/rng.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libovergen_telemetry-452a5a5f5f6a3e39.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/capture.rs crates/telemetry/src/clock.rs crates/telemetry/src/fs.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/rng.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libovergen_telemetry-452a5a5f5f6a3e39.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/capture.rs crates/telemetry/src/clock.rs crates/telemetry/src/fs.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/rng.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/capture.rs:
crates/telemetry/src/clock.rs:
crates/telemetry/src/fs.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/rng.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/span.rs:
