/root/repo/target/release/deps/end_to_end-71814752e6151df0.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-71814752e6151df0: tests/end_to_end.rs

tests/end_to_end.rs:
