/root/repo/target/release/deps/properties-757063dc727ed5c0.d: tests/properties.rs

/root/repo/target/release/deps/properties-757063dc727ed5c0: tests/properties.rs

tests/properties.rs:
