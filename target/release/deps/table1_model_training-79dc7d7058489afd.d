/root/repo/target/release/deps/table1_model_training-79dc7d7058489afd.d: crates/bench/src/bin/table1_model_training.rs

/root/repo/target/release/deps/table1_model_training-79dc7d7058489afd: crates/bench/src/bin/table1_model_training.rs

crates/bench/src/bin/table1_model_training.rs:
