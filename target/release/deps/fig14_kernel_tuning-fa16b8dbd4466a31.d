/root/repo/target/release/deps/fig14_kernel_tuning-fa16b8dbd4466a31.d: crates/bench/src/bin/fig14_kernel_tuning.rs

/root/repo/target/release/deps/fig14_kernel_tuning-fa16b8dbd4466a31: crates/bench/src/bin/fig14_kernel_tuning.rs

crates/bench/src/bin/fig14_kernel_tuning.rs:
