/root/repo/target/release/deps/overgen_sim-3ec59a2d57b59cfe.d: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/report.rs

/root/repo/target/release/deps/libovergen_sim-3ec59a2d57b59cfe.rlib: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/report.rs

/root/repo/target/release/deps/libovergen_sim-3ec59a2d57b59cfe.rmeta: crates/sim/src/lib.rs crates/sim/src/flow.rs crates/sim/src/report.rs

crates/sim/src/lib.rs:
crates/sim/src/flow.rs:
crates/sim/src/report.rs:
