/root/repo/target/release/deps/overgen_mdfg-c7eaad27419d0b2f.d: crates/mdfg/src/lib.rs crates/mdfg/src/graph.rs crates/mdfg/src/node.rs crates/mdfg/src/reuse.rs

/root/repo/target/release/deps/libovergen_mdfg-c7eaad27419d0b2f.rlib: crates/mdfg/src/lib.rs crates/mdfg/src/graph.rs crates/mdfg/src/node.rs crates/mdfg/src/reuse.rs

/root/repo/target/release/deps/libovergen_mdfg-c7eaad27419d0b2f.rmeta: crates/mdfg/src/lib.rs crates/mdfg/src/graph.rs crates/mdfg/src/node.rs crates/mdfg/src/reuse.rs

crates/mdfg/src/lib.rs:
crates/mdfg/src/graph.rs:
crates/mdfg/src/node.rs:
crates/mdfg/src/reuse.rs:
