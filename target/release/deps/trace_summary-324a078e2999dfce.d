/root/repo/target/release/deps/trace_summary-324a078e2999dfce.d: crates/bench/src/bin/trace_summary.rs

/root/repo/target/release/deps/trace_summary-324a078e2999dfce: crates/bench/src/bin/trace_summary.rs

crates/bench/src/bin/trace_summary.rs:
