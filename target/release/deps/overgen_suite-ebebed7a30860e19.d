/root/repo/target/release/deps/overgen_suite-ebebed7a30860e19.d: src/lib.rs

/root/repo/target/release/deps/overgen_suite-ebebed7a30860e19: src/lib.rs

src/lib.rs:
