/root/repo/target/release/deps/ablations-e38cac5d6e7d6aea.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-e38cac5d6e7d6aea: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
