/root/repo/target/release/deps/all_workloads_general-0d62c74524df0b0b.d: tests/all_workloads_general.rs

/root/repo/target/release/deps/all_workloads_general-0d62c74524df0b0b: tests/all_workloads_general.rs

tests/all_workloads_general.rs:
