/root/repo/target/release/deps/overgen_scheduler-08490699da2e656d.d: crates/scheduler/src/lib.rs crates/scheduler/src/place.rs crates/scheduler/src/repair.rs crates/scheduler/src/types.rs

/root/repo/target/release/deps/libovergen_scheduler-08490699da2e656d.rlib: crates/scheduler/src/lib.rs crates/scheduler/src/place.rs crates/scheduler/src/repair.rs crates/scheduler/src/types.rs

/root/repo/target/release/deps/libovergen_scheduler-08490699da2e656d.rmeta: crates/scheduler/src/lib.rs crates/scheduler/src/place.rs crates/scheduler/src/repair.rs crates/scheduler/src/types.rs

crates/scheduler/src/lib.rs:
crates/scheduler/src/place.rs:
crates/scheduler/src/repair.rs:
crates/scheduler/src/types.rs:
