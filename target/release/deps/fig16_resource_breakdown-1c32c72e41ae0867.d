/root/repo/target/release/deps/fig16_resource_breakdown-1c32c72e41ae0867.d: crates/bench/src/bin/fig16_resource_breakdown.rs

/root/repo/target/release/deps/fig16_resource_breakdown-1c32c72e41ae0867: crates/bench/src/bin/fig16_resource_breakdown.rs

crates/bench/src/bin/fig16_resource_breakdown.rs:
