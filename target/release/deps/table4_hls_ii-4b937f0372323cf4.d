/root/repo/target/release/deps/table4_hls_ii-4b937f0372323cf4.d: crates/bench/src/bin/table4_hls_ii.rs

/root/repo/target/release/deps/table4_hls_ii-4b937f0372323cf4: crates/bench/src/bin/table4_hls_ii.rs

crates/bench/src/bin/table4_hls_ii.rs:
