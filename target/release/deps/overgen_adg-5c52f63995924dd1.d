/root/repo/target/release/deps/overgen_adg-5c52f63995924dd1.d: crates/adg/src/lib.rs crates/adg/src/fingerprint.rs crates/adg/src/graph.rs crates/adg/src/node.rs crates/adg/src/summary.rs crates/adg/src/system.rs crates/adg/src/topology.rs

/root/repo/target/release/deps/libovergen_adg-5c52f63995924dd1.rlib: crates/adg/src/lib.rs crates/adg/src/fingerprint.rs crates/adg/src/graph.rs crates/adg/src/node.rs crates/adg/src/summary.rs crates/adg/src/system.rs crates/adg/src/topology.rs

/root/repo/target/release/deps/libovergen_adg-5c52f63995924dd1.rmeta: crates/adg/src/lib.rs crates/adg/src/fingerprint.rs crates/adg/src/graph.rs crates/adg/src/node.rs crates/adg/src/summary.rs crates/adg/src/system.rs crates/adg/src/topology.rs

crates/adg/src/lib.rs:
crates/adg/src/fingerprint.rs:
crates/adg/src/graph.rs:
crates/adg/src/node.rs:
crates/adg/src/summary.rs:
crates/adg/src/system.rs:
crates/adg/src/topology.rs:
