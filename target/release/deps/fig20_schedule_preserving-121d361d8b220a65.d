/root/repo/target/release/deps/fig20_schedule_preserving-121d361d8b220a65.d: crates/bench/src/bin/fig20_schedule_preserving.rs

/root/repo/target/release/deps/fig20_schedule_preserving-121d361d8b220a65: crates/bench/src/bin/fig20_schedule_preserving.rs

crates/bench/src/bin/fig20_schedule_preserving.rs:
