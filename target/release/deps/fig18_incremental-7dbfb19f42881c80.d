/root/repo/target/release/deps/fig18_incremental-7dbfb19f42881c80.d: crates/bench/src/bin/fig18_incremental.rs

/root/repo/target/release/deps/fig18_incremental-7dbfb19f42881c80: crates/bench/src/bin/fig18_incremental.rs

crates/bench/src/bin/fig18_incremental.rs:
