/root/repo/target/release/deps/fig15_dse_time-082e2c1288ef5701.d: crates/bench/src/bin/fig15_dse_time.rs

/root/repo/target/release/deps/fig15_dse_time-082e2c1288ef5701: crates/bench/src/bin/fig15_dse_time.rs

crates/bench/src/bin/fig15_dse_time.rs:
