/root/repo/target/release/deps/overgen_model-fb2907242590955f.d: crates/model/src/lib.rs crates/model/src/dataset.rs crates/model/src/estimate.rs crates/model/src/mlp.rs crates/model/src/perf.rs crates/model/src/resources.rs crates/model/src/synthesis.rs crates/model/src/time.rs

/root/repo/target/release/deps/libovergen_model-fb2907242590955f.rlib: crates/model/src/lib.rs crates/model/src/dataset.rs crates/model/src/estimate.rs crates/model/src/mlp.rs crates/model/src/perf.rs crates/model/src/resources.rs crates/model/src/synthesis.rs crates/model/src/time.rs

/root/repo/target/release/deps/libovergen_model-fb2907242590955f.rmeta: crates/model/src/lib.rs crates/model/src/dataset.rs crates/model/src/estimate.rs crates/model/src/mlp.rs crates/model/src/perf.rs crates/model/src/resources.rs crates/model/src/synthesis.rs crates/model/src/time.rs

crates/model/src/lib.rs:
crates/model/src/dataset.rs:
crates/model/src/estimate.rs:
crates/model/src/mlp.rs:
crates/model/src/perf.rs:
crates/model/src/resources.rs:
crates/model/src/synthesis.rs:
crates/model/src/time.rs:
