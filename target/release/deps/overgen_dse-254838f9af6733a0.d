/root/repo/target/release/deps/overgen_dse-254838f9af6733a0.d: crates/dse/src/lib.rs crates/dse/src/cache.rs crates/dse/src/engine.rs crates/dse/src/pool.rs crates/dse/src/system.rs crates/dse/src/transforms.rs

/root/repo/target/release/deps/libovergen_dse-254838f9af6733a0.rlib: crates/dse/src/lib.rs crates/dse/src/cache.rs crates/dse/src/engine.rs crates/dse/src/pool.rs crates/dse/src/system.rs crates/dse/src/transforms.rs

/root/repo/target/release/deps/libovergen_dse-254838f9af6733a0.rmeta: crates/dse/src/lib.rs crates/dse/src/cache.rs crates/dse/src/engine.rs crates/dse/src/pool.rs crates/dse/src/system.rs crates/dse/src/transforms.rs

crates/dse/src/lib.rs:
crates/dse/src/cache.rs:
crates/dse/src/engine.rs:
crates/dse/src/pool.rs:
crates/dse/src/system.rs:
crates/dse/src/transforms.rs:
