#!/bin/sh
# Repo health check: tier-1 verify + formatting + trace determinism.
# Run from the repo root: ./scripts/check.sh
set -e

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== release tests (full suite under optimizations) =="
cargo test -q --release

echo "== formatting =="
cargo fmt --check

echo "== trace determinism (byte-identical seeded JSONL) =="
cargo test -q --test telemetry_trace deterministic_trace_is_byte_identical_and_well_formed

echo "== parallel determinism (results + traces invariant in worker count) =="
# The suite compares threads=1 vs 4 and chains at 1 vs 4 workers internally;
# running it under both env defaults also covers the bench-harness plumbing.
OVERGEN_DSE_THREADS=1 cargo test -q --test parallel_determinism
OVERGEN_DSE_THREADS=4 cargo test -q --test parallel_determinism

echo "== trace diff across worker counts (bench harness end to end) =="
TRACE_TMP=$(mktemp -d)
trap 'rm -rf "$TRACE_TMP"' EXIT INT TERM
OVERGEN_TRACE=1 OVERGEN_DSE_ITERS=10 OVERGEN_RESULTS_DIR="$TRACE_TMP/t1" \
    OVERGEN_DSE_THREADS=1 cargo run -q --release -p overgen-bench \
    --bin fig18_incremental >/dev/null
OVERGEN_TRACE=1 OVERGEN_DSE_ITERS=10 OVERGEN_RESULTS_DIR="$TRACE_TMP/t4" \
    OVERGEN_DSE_THREADS=4 cargo run -q --release -p overgen-bench \
    --bin fig18_incremental >/dev/null
diff "$TRACE_TMP/t1/fig18.trace.jsonl" "$TRACE_TMP/t4/fig18.trace.jsonl" \
    || { echo "FAIL: traces differ across worker counts"; exit 1; }

echo "ALL CHECKS PASSED"
