#!/bin/sh
# Repo health check: tier-1 verify + formatting + trace determinism.
# Run from the repo root: ./scripts/check.sh
set -e

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== formatting =="
cargo fmt --check

echo "== trace determinism (byte-identical seeded JSONL) =="
cargo test -q --test telemetry_trace deterministic_trace_is_byte_identical_and_well_formed

echo "ALL CHECKS PASSED"
