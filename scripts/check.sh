#!/bin/sh
# Repo health check, split into the same stages CI runs.
#
#   ./scripts/check.sh              run every stage
#   ./scripts/check.sh <stage>...   run only the named stages
#
# Stages:
#   build        release build of the whole workspace
#   test         debug + release test suites (tier-1 gate)
#   fmt          cargo fmt --check
#   clippy       cargo clippy --workspace --all-targets -D warnings
#   determinism  byte-identical traces: seeded, threads 1 vs 4, repair on/off
#   checkpoint   resume-equivalence gates: interrupted-then-resumed runs
#                reproduce results, stats, and traces bit-identically, and
#                the kill-and-resume bench stays under the overhead budget
#   bench        bench harness end to end: trace diffs across worker counts
#                and repair modes, BENCH_repair.json speedup record
#   objectives   evaluation-pipeline gates: default objective byte-identical
#                to the pre-refactor goldens, Pareto frontier invariants,
#                and the budgeted bench rejecting infeasible proposals with
#                traces invariant in worker count
#   profile      observability gates: profiler + heartbeat trace-invisible,
#                metric names documented, golden phase table from a
#                deterministic trace, >= 95% eval-time attribution
#   sim          simulator fast-path gates: differential oracle (pruned +
#                cached sweep vs exhaustive) across every workload, the
#                analytic lower-bound property, oracle mode invisible in
#                traces, and BENCH_sim.json holding >= 5x median eval
#                speedup with winners identical to exhaustive search
#   service      multi-tenant job-server gates: the persistent-store unit
#                suite, the cross-tenant differential suite at 1 and 4
#                workers, and BENCH_service.json holding >= 2x median
#                warm-cache speedup with concurrent-vs-sequential job
#                artifacts byte-identical (plus a synthetic-divergence
#                negative test of the gate itself)
#   placement    spatial-placement gates: the placement property + golden
#                suite (default-objective runs byte-identical with the
#                stage present, placement-aware runs deterministic across
#                thread counts), the placer unit suite, and
#                BENCH_placement.json holding sweep-direction-stable
#                winners with the congestion/wirelength medians inside the
#                tolerance bands (plus a synthetic-violation negative test
#                of the gate itself)
#   rewrite      rewrite-engine gates: the rule/delta/inference unit
#                suite, the golden equivalence suite (compound off
#                byte-identical to the pre-rewrite pins, compound on
#                deterministic across threads/cache/resume), and
#                BENCH_rewrite.json holding the repair fast-path share at
#                its hand-classified baseline in both compound modes with
#                a clean release-mode inference oracle (plus a synthetic-
#                regression negative test of the gate itself)
set -e

stage_build() {
    echo "== build: release workspace =="
    cargo build --release --workspace
}

stage_test() {
    echo "== test: tier-1 (debug) =="
    cargo test -q --workspace
    echo "== test: full suite under optimizations =="
    cargo test -q --release
}

stage_fmt() {
    echo "== fmt =="
    cargo fmt --all --check
}

stage_clippy() {
    echo "== clippy (-D warnings) =="
    cargo clippy --workspace --all-targets -- -D warnings
}

stage_determinism() {
    echo "== determinism: byte-identical seeded JSONL trace =="
    cargo test -q --test telemetry_trace \
        deterministic_trace_is_byte_identical_and_well_formed

    echo "== determinism: results + traces invariant in worker count =="
    # The suite compares threads=1 vs 4 and chains at 1 vs 4 workers
    # internally; running it under both env defaults also covers the
    # bench-harness plumbing.
    OVERGEN_DSE_THREADS=1 cargo test -q --test parallel_determinism
    OVERGEN_DSE_THREADS=4 cargo test -q --test parallel_determinism

    echo "== determinism: repair fast path invisible in results + traces =="
    cargo test -q --test repair_determinism
    cargo test -q --test properties incremental_repair_equals_full_replacement
}

stage_checkpoint() {
    echo "== checkpoint: resume equivalence at 1 and 4 workers =="
    OVERGEN_DSE_THREADS=1 cargo test -q --test checkpoint_resume
    OVERGEN_DSE_THREADS=4 cargo test -q --test checkpoint_resume

    echo "== checkpoint: kill-and-resume bench, write overhead < 5% =="
    if [ -n "${CHECK_TRACE_DIR:-}" ]; then
        CK_TMP=$CHECK_TRACE_DIR/checkpoint
        mkdir -p "$CK_TMP"
    else
        CK_TMP=$(mktemp -d)
        trap 'rm -rf "$CK_TMP"' EXIT INT TERM
    fi
    OVERGEN_RESULTS_DIR="$CK_TMP" cargo run -q --release -p overgen-bench \
        --bin bench_checkpoint >/dev/null
    grep -q '"resume_match":true' "$CK_TMP/BENCH_checkpoint.json" \
        || { echo "FAIL: kill-and-resume diverged from the uninterrupted run"; exit 1; }
    grep -q '"checkpoint_invisible":true' "$CK_TMP/BENCH_checkpoint.json" \
        || { echo "FAIL: checkpoint writes perturbed the run"; exit 1; }
    awk 'match($0, /"overhead_pct":[0-9.]+/) {
            pct = substr($0, RSTART + 15, RLENGTH - 15)
            if (pct + 0 >= 5.0) { print "FAIL: checkpoint overhead " pct "% >= 5%"; exit 1 }
            found = 1
         }
         END { if (!found) { print "FAIL: overhead_pct missing"; exit 1 } }' \
        "$CK_TMP/BENCH_checkpoint.json"
}

stage_bench() {
    # CI sets CHECK_TRACE_DIR so failing traces survive for artifact upload;
    # locally the temp dir is cleaned up on exit.
    if [ -n "${CHECK_TRACE_DIR:-}" ]; then
        TRACE_TMP=$CHECK_TRACE_DIR
        mkdir -p "$TRACE_TMP"
    else
        TRACE_TMP=$(mktemp -d)
        trap 'rm -rf "$TRACE_TMP"' EXIT INT TERM
    fi

    echo "== bench: trace diff across worker counts =="
    OVERGEN_TRACE=1 OVERGEN_DSE_ITERS=10 OVERGEN_RESULTS_DIR="$TRACE_TMP/t1" \
        OVERGEN_DSE_THREADS=1 cargo run -q --release -p overgen-bench \
        --bin fig18_incremental >/dev/null
    OVERGEN_TRACE=1 OVERGEN_DSE_ITERS=10 OVERGEN_RESULTS_DIR="$TRACE_TMP/t4" \
        OVERGEN_DSE_THREADS=4 cargo run -q --release -p overgen-bench \
        --bin fig18_incremental >/dev/null
    diff "$TRACE_TMP/t1/fig18.trace.jsonl" "$TRACE_TMP/t4/fig18.trace.jsonl" \
        || { echo "FAIL: traces differ across worker counts"; exit 1; }

    echo "== bench: trace diff with repair fast path on vs off =="
    OVERGEN_TRACE=1 OVERGEN_DSE_ITERS=10 OVERGEN_RESULTS_DIR="$TRACE_TMP/r1" \
        OVERGEN_REPAIR=1 cargo run -q --release -p overgen-bench \
        --bin bench_repair >/dev/null
    OVERGEN_TRACE=1 OVERGEN_DSE_ITERS=10 OVERGEN_RESULTS_DIR="$TRACE_TMP/r0" \
        OVERGEN_REPAIR=0 cargo run -q --release -p overgen-bench \
        --bin bench_repair >/dev/null
    diff "$TRACE_TMP/r1/repair.trace.jsonl" "$TRACE_TMP/r0/repair.trace.jsonl" \
        || { echo "FAIL: traces differ with repair on vs off"; exit 1; }

    echo "== bench: repair speedup record =="
    # The r1 leg above wrote the real record; assert it reports a speedup.
    grep -q '"median_speedup"' "$TRACE_TMP/r1/BENCH_repair.json" \
        || { echo "FAIL: BENCH_repair.json missing median_speedup"; exit 1; }

    echo "== bench: perf-regression gate against the committed baseline =="
    # Deterministic ratios get hard bands; absolute wall numbers only get
    # presence checks (machines differ). The committed baseline ran at 60
    # iterations, the candidate at 10 — the bands absorb that.
    cargo run -q --release -p overgen-bench --bin bench-compare -- \
        results/BENCH_repair.json "$TRACE_TMP/r1/BENCH_repair.json" \
        min:dse.fast_share=0.5 \
        max-drop:timing.median_speedup=0.5 \
        min:timing.min_speedup=1.0 \
        require:timing.proposals \
        require:timing.median_repair_seconds \
        || { echo "FAIL: repair benchmark regressed past the tolerance bands"; exit 1; }

    echo "== bench: injected synthetic regression must fail the gate =="
    sed -e 's/"fast_share":[0-9.eE+-]*/"fast_share":0.01/' \
        -e 's/"median_speedup":[0-9.eE+-]*/"median_speedup":1.01/' \
        "$TRACE_TMP/r1/BENCH_repair.json" > "$TRACE_TMP/regressed.json"
    if cargo run -q --release -p overgen-bench --bin bench-compare -- \
        results/BENCH_repair.json "$TRACE_TMP/regressed.json" \
        min:dse.fast_share=0.5 \
        max-drop:timing.median_speedup=0.5 >/dev/null; then
        echo "FAIL: bench-compare accepted a synthetic regression"; exit 1
    fi
}

stage_objectives() {
    echo "== objectives: default objective byte-identical to pre-refactor =="
    cargo test -q --test objective_equivalence

    echo "== objectives: Pareto frontier invariants =="
    cargo test -q --test properties \
        pareto_front_is_the_non_dominated_subset_in_canonical_order

    if [ -n "${CHECK_TRACE_DIR:-}" ]; then
        PF_TMP=$CHECK_TRACE_DIR/pareto
        mkdir -p "$PF_TMP"
    else
        PF_TMP=$(mktemp -d)
        trap 'rm -rf "$PF_TMP"' EXIT INT TERM
    fi

    echo "== objectives: budgeted bench trace diff across worker counts =="
    OVERGEN_TRACE=1 OVERGEN_DSE_ITERS=10 OVERGEN_RESULTS_DIR="$PF_TMP/t1" \
        OVERGEN_DSE_THREADS=1 cargo run -q --release -p overgen-bench \
        --bin bench_pareto >/dev/null
    OVERGEN_TRACE=1 OVERGEN_DSE_ITERS=10 OVERGEN_RESULTS_DIR="$PF_TMP/t4" \
        OVERGEN_DSE_THREADS=4 cargo run -q --release -p overgen-bench \
        --bin bench_pareto >/dev/null
    diff "$PF_TMP/t1/pareto.trace.jsonl" "$PF_TMP/t4/pareto.trace.jsonl" \
        || { echo "FAIL: pareto traces differ across worker counts"; exit 1; }

    echo "== objectives: tight budget rejects infeasible proposals =="
    grep -q '"winner_admitted":true' "$PF_TMP/t1/BENCH_pareto.json" \
        || { echo "FAIL: budgeted winner overflows its own budget"; exit 1; }
    awk 'match($0, /"infeasible":[0-9]+/) {
            n = substr($0, RSTART + 13, RLENGTH - 13)
            if (n + 0 < 1) { print "FAIL: no infeasible rejections recorded"; exit 1 }
            found = 1
         }
         END { if (!found) { print "FAIL: infeasible count missing"; exit 1 } }' \
        "$PF_TMP/t1/BENCH_pareto.json"
}

stage_profile() {
    echo "== profile: profiler + heartbeat invisible to traces, names documented =="
    cargo test -q --test profiling_determinism
    cargo test -q --test metric_names

    if [ -n "${CHECK_TRACE_DIR:-}" ]; then
        PROF_TMP=$CHECK_TRACE_DIR/profile
        mkdir -p "$PROF_TMP"
    else
        PROF_TMP=$(mktemp -d)
        trap 'rm -rf "$PROF_TMP"' EXIT INT TERM
    fi

    echo "== profile: golden phase table from a deterministic trace =="
    # The trace clock is logical ticks, so the rendered table is identical
    # on every machine; regenerate the golden with the same command if a
    # deliberate change moves it.
    OVERGEN_TRACE=1 OVERGEN_DSE_ITERS=10 OVERGEN_DSE_THREADS=1 \
        OVERGEN_RESULTS_DIR="$PROF_TMP" cargo run -q --release -p overgen-bench \
        --bin bench_dse >/dev/null
    cargo run -q --release -p overgen-bench --bin overgen-profile -- \
        "$PROF_TMP/dse.trace.jsonl" > "$PROF_TMP/profile_table.txt"
    diff results/profile_table.golden.txt "$PROF_TMP/profile_table.txt" \
        || { echo "FAIL: phase table drifted from results/profile_table.golden.txt"; exit 1; }

    echo "== profile: chrome trace-event export =="
    cargo run -q --release -p overgen-bench --bin overgen-profile -- \
        "$PROF_TMP/dse.trace.jsonl" --chrome "$PROF_TMP/dse.chrome.json" >/dev/null
    grep -q '"traceEvents":\[{' "$PROF_TMP/dse.chrome.json" \
        || { echo "FAIL: chrome export has no events"; exit 1; }

    echo "== profile: >= 95% of eval wall time attributed to a named phase =="
    awk 'match($0, /"coverage":[0-9.]+/) {
            c = substr($0, RSTART + 11, RLENGTH - 11)
            if (c + 0 < 0.95) { print "FAIL: coverage " c " < 0.95"; exit 1 }
            found = 1
         }
         END { if (!found) { print "FAIL: coverage missing"; exit 1 } }' \
        "$PROF_TMP/dse.profile.json"
}

stage_sim() {
    echo "== sim: differential oracle, pruned + cached sweep vs exhaustive =="
    # OVERGEN_SIM_ORACLE=1 inside the suite runs a shadow exhaustive sweep
    # (plain SimBatch::run, no pruning, no reuse cache) next to the real
    # one and asserts identical winners on every workload.
    cargo test -q --release --test sim_oracle

    echo "== sim: analytic model is a true lower bound =="
    cargo test -q --test properties analytic_bound_never_exceeds_simulated_cycles

    if [ -n "${CHECK_TRACE_DIR:-}" ]; then
        SIM_TMP=$CHECK_TRACE_DIR/sim
        mkdir -p "$SIM_TMP"
    else
        SIM_TMP=$(mktemp -d)
        trap 'rm -rf "$SIM_TMP"' EXIT INT TERM
    fi

    echo "== sim: oracle shadow sweep invisible in the bench trace =="
    # The shadow sweep must not emit telemetry: the deterministic
    # (logical-clock) trace of the full benchmark has to be byte-identical
    # with the oracle on and off. Timing in BENCH_sim.json legitimately
    # differs, so only the traces are diffed; the gate below reads the
    # oracle-off leg, whose timings are the real fast-path numbers.
    OVERGEN_TRACE=1 OVERGEN_SIM_ORACLE=1 OVERGEN_RESULTS_DIR="$SIM_TMP/o1" \
        cargo run -q --release -p overgen-bench --bin bench_sim >/dev/null
    OVERGEN_TRACE=1 OVERGEN_SIM_ORACLE=0 OVERGEN_RESULTS_DIR="$SIM_TMP/o0" \
        cargo run -q --release -p overgen-bench --bin bench_sim >/dev/null
    diff "$SIM_TMP/o1/sim.trace.jsonl" "$SIM_TMP/o0/sim.trace.jsonl" \
        || { echo "FAIL: oracle shadow sweep perturbed the trace"; exit 1; }

    echo "== sim: >= 5x median eval speedup at unchanged winners =="
    cargo run -q --release -p overgen-bench --bin bench-compare -- \
        results/BENCH_sim.json "$SIM_TMP/o0/BENCH_sim.json" \
        min:summary.median_speedup=5 \
        min:summary.winner_match_all=1 \
        require:summary.pruned \
        require:summary.reused \
        || { echo "FAIL: simulator fast path regressed past the speedup/winner gate"; exit 1; }

    echo "== sim: injected winner divergence must fail the gate =="
    sed -e 's/"winner_match_all":true/"winner_match_all":false/' \
        -e 's/"median_speedup":[0-9.eE+-]*/"median_speedup":1.2/' \
        "$SIM_TMP/o0/BENCH_sim.json" > "$SIM_TMP/diverged.json"
    if cargo run -q --release -p overgen-bench --bin bench-compare -- \
        results/BENCH_sim.json "$SIM_TMP/diverged.json" \
        min:summary.median_speedup=5 \
        min:summary.winner_match_all=1 >/dev/null; then
        echo "FAIL: bench-compare accepted a diverged winner"; exit 1
    fi
}

stage_service() {
    echo "== service: persistent store edge cases (corruption, versioning, races) =="
    cargo test -q --release -p overgen-dse store::

    echo "== service: cross-tenant differential suite at 1 and 4 workers =="
    # The suite compares workers=1 vs 4 internally; running it under both
    # per-job thread defaults also covers the job-level parallelism axis.
    OVERGEN_DSE_THREADS=1 cargo test -q --release --test service_determinism
    OVERGEN_DSE_THREADS=4 cargo test -q --release --test service_determinism

    if [ -n "${CHECK_TRACE_DIR:-}" ]; then
        SVC_TMP=$CHECK_TRACE_DIR/service
        mkdir -p "$SVC_TMP"
    else
        SVC_TMP=$(mktemp -d)
        trap 'rm -rf "$SVC_TMP"' EXIT INT TERM
    fi

    echo "== service: >= 2x warm-cache speedup, concurrent == sequential =="
    OVERGEN_RESULTS_DIR="$SVC_TMP" cargo run -q --release -p overgen-bench \
        --bin bench_service >/dev/null
    cargo run -q --release -p overgen-bench --bin bench-compare -- \
        results/BENCH_service.json "$SVC_TMP/BENCH_service.json" \
        min:summary.median_warm_speedup=2 \
        min:summary.identity=1 \
        min:store.hits=1 \
        max:store.misses=0 \
        require:store.warm_entries \
        || { echo "FAIL: service benchmark regressed past the speedup/identity gate"; exit 1; }

    echo "== service: injected artifact divergence must fail the gate =="
    sed -e 's/"identity":true/"identity":false/' \
        -e 's/"median_warm_speedup":[0-9.eE+-]*/"median_warm_speedup":1.1/' \
        "$SVC_TMP/BENCH_service.json" > "$SVC_TMP/diverged.json"
    if cargo run -q --release -p overgen-bench --bin bench-compare -- \
        results/BENCH_service.json "$SVC_TMP/diverged.json" \
        min:summary.median_warm_speedup=2 \
        min:summary.identity=1 >/dev/null; then
        echo "FAIL: bench-compare accepted diverged service artifacts"; exit 1
    fi

    echo "== service: a missing baseline must exit 3, not read as a pass =="
    rc=0
    cargo run -q --release -p overgen-bench --bin bench-compare -- \
        "$SVC_TMP/no-such-baseline.json" "$SVC_TMP/BENCH_service.json" \
        min:summary.identity=1 >/dev/null 2>&1 || rc=$?
    [ "$rc" -eq 3 ] \
        || { echo "FAIL: bench-compare must exit 3 on a missing baseline (got $rc)"; exit 1; }
}

stage_placement() {
    echo "== placement: placer unit suite =="
    cargo test -q --release -p overgen-model placement

    echo "== placement: property + golden suite (default runs untouched) =="
    cargo test -q --release --test placement

    if [ -n "${CHECK_TRACE_DIR:-}" ]; then
        PL_TMP=$CHECK_TRACE_DIR/placement
        mkdir -p "$PL_TMP"
    else
        PL_TMP=$(mktemp -d)
        trap 'rm -rf "$PL_TMP"' EXIT INT TERM
    fi

    echo "== placement: sweep-stable winners inside the tolerance bands =="
    OVERGEN_RESULTS_DIR="$PL_TMP" cargo run -q --release -p overgen-bench \
        --bin bench_placement >/dev/null
    cargo run -q --release -p overgen-bench --bin bench-compare -- \
        results/BENCH_placement.json "$PL_TMP/BENCH_placement.json" \
        min:summary.winner_stable=1 \
        max:summary.max_congestion=1.2 \
        require:summary.median_congestion \
        require:summary.median_wirelength \
        require:summary.mean_fmax_mhz \
        || { echo "FAIL: placement benchmark regressed past the stability/congestion gate"; exit 1; }

    echo "== placement: injected winner instability must fail the gate =="
    sed -e 's/"winner_stable":1/"winner_stable":0/' \
        -e 's/"max_congestion":[0-9.eE+-]*/"max_congestion":9.9/' \
        "$PL_TMP/BENCH_placement.json" > "$PL_TMP/unstable.json"
    if cargo run -q --release -p overgen-bench --bin bench-compare -- \
        results/BENCH_placement.json "$PL_TMP/unstable.json" \
        min:summary.winner_stable=1 \
        max:summary.max_congestion=1.2 >/dev/null; then
        echo "FAIL: bench-compare accepted unstable placement winners"; exit 1
    fi
}

stage_rewrite() {
    echo "== rewrite: rule / delta / inference unit suite =="
    cargo test -q --release -p overgen-dse rewrite

    echo "== rewrite: golden + compound equivalence suite =="
    cargo test -q --release --test rewrite_equivalence

    if [ -n "${CHECK_TRACE_DIR:-}" ]; then
        RW_TMP=$CHECK_TRACE_DIR/rewrite
        mkdir -p "$RW_TMP"
    else
        RW_TMP=$(mktemp -d)
        trap 'rm -rf "$RW_TMP"' EXIT INT TERM
    fi

    echo "== rewrite: fast-path share and inference oracle inside the gate =="
    OVERGEN_RESULTS_DIR="$RW_TMP" cargo run -q --release -p overgen-bench \
        --bin bench_rewrite >/dev/null
    cargo run -q --release -p overgen-bench --bin bench-compare -- \
        results/BENCH_rewrite.json "$RW_TMP/BENCH_rewrite.json" \
        min:summary.fast_share_off=0.83 \
        min:summary.fast_share_on=0.83 \
        max:summary.oracle_weaker=0 \
        require:summary.per_application_speedup \
        require:compound_on.compound_proposals \
        || { echo "FAIL: rewrite benchmark regressed past the share/oracle gate"; exit 1; }

    echo "== rewrite: injected share regression must fail the gate =="
    sed -e 's/"fast_share_off":[0-9.eE+-]*/"fast_share_off":0.1/g' \
        -e 's/"oracle_weaker":[0-9]*/"oracle_weaker":7/' \
        "$RW_TMP/BENCH_rewrite.json" > "$RW_TMP/regressed.json"
    if cargo run -q --release -p overgen-bench --bin bench-compare -- \
        results/BENCH_rewrite.json "$RW_TMP/regressed.json" \
        min:summary.fast_share_off=0.83 \
        max:summary.oracle_weaker=0 >/dev/null; then
        echo "FAIL: bench-compare accepted a regressed rewrite record"; exit 1
    fi
}

if [ $# -eq 0 ]; then
    set -- build test fmt clippy determinism checkpoint bench objectives profile sim service placement rewrite
fi

for stage in "$@"; do
    case "$stage" in
    build | test | fmt | clippy | determinism | checkpoint | bench | objectives | profile | sim | service | placement | rewrite) "stage_$stage" ;;
    *)
        echo "unknown stage: $stage" >&2
        echo "usage: $0 [build|test|fmt|clippy|determinism|checkpoint|bench|objectives|profile|sim|service|placement|rewrite]..." >&2
        exit 2
        ;;
    esac
done

echo "ALL CHECKS PASSED"
