//! The refactor-equivalence contract for the rewrite-rule engine:
//! with compound proposals off (the default, `compound: 1`), the DSE's
//! results **and** its deterministic JSONL traces are byte-identical to
//! the pre-rewrite engine — the same four golden digests pinned by
//! `objective_equivalence.rs`, captured before mutations were rebuilt as
//! declarative rules with recorded deltas and inferred footprints.
//!
//! With compound proposals on (`compound: 3`), the trajectory legally
//! diverges (extra RNG draws per proposal), but it must still be
//! deterministic: thread-count independent, cache-transparent, and
//! checkpoint/resume-stable. Those runs are pinned by fresh goldens
//! captured at the introduction of the feature.

use overgen_compiler::CompileOptions;
use overgen_dse::{Checkpoint, CheckpointConfig, Dse, DseConfig, DseResult};
use overgen_telemetry::Collector;
use overgen_workloads as workloads;

fn fnv1a64(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn fold_u64(h: u64, v: u64) -> u64 {
    fnv1a64(&v.to_le_bytes(), h)
}

/// Same digest as `objective_equivalence.rs`: everything a pre-refactor
/// `DseResult` carried.
fn result_digest(r: &DseResult) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = fold_u64(h, r.objective.to_bits());
    h = fold_u64(h, r.sys_adg.fingerprint());
    h = fold_u64(h, r.history.len() as u64);
    for (t, o) in &r.history {
        h = fold_u64(h, t.to_bits());
        h = fold_u64(h, o.to_bits());
    }
    for (name, v) in &r.variants {
        h = fnv1a64(name.as_bytes(), h);
        h = fold_u64(h, u64::from(*v));
    }
    for v in [
        r.stats.iterations,
        r.stats.accepted,
        r.stats.invalid,
        r.stats.full_schedules,
        r.stats.repairs,
        r.stats.intact,
        r.stats.cache_hits,
        r.stats.cache_misses,
        r.stats.repair_fast,
        r.stats.repair_fallback,
    ] {
        h = fold_u64(h, v as u64);
    }
    h
}

fn trace_digest(trace: &str) -> u64 {
    fnv1a64(trace.as_bytes(), 0xcbf2_9ce4_8422_2325)
}

/// The exact run configuration of `objective_equivalence.rs`'s goldens,
/// parameterized over the compound-proposal cap.
fn golden_cfg(threads: usize, cache: bool, compound: usize) -> DseConfig {
    DseConfig {
        iterations: 24,
        seed: 0xB0B5_CA7E,
        threads,
        chains: 2,
        exchange_interval: 8,
        cache,
        compound,
        compile: CompileOptions {
            max_unroll: 4,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn run(cfg: DseConfig) -> (DseResult, String) {
    let (collector, ring) = Collector::ring(1 << 18);
    let _install = overgen_telemetry::install(collector);
    let domain = vec![workloads::by_name("fir").unwrap()];
    let result = Dse::new(domain, cfg).run().unwrap();
    (result, ring.to_jsonl())
}

// Captured on the tree immediately before the rewrite-engine refactor —
// identical constants to `objective_equivalence.rs`. A drift here means
// a ported rule's RNG draw sequence, a recorded delta, or an inferred
// footprint no longer reproduces its legacy hand-rolled mutation.
const GOLDEN_RESULT_CACHE: u64 = 0xec61d8114f3cb3ad;
const GOLDEN_TRACE_CACHE: u64 = 0xb61ade7abb564cdb;
const GOLDEN_RESULT_NOCACHE: u64 = 0x4604efe105b411dc;
const GOLDEN_TRACE_NOCACHE: u64 = 0xd6ef98dbfbaf1d5e;

// Captured at the introduction of compound proposals (`compound: 3`,
// otherwise the golden config). New surface, so fresh pins: they hold
// the compound trajectory deterministic across threads, cache modes,
// and checkpoint/resume.
const GOLDEN_RESULT_COMPOUND_CACHE: u64 = 0x8f09eafbde585634;
const GOLDEN_TRACE_COMPOUND_CACHE: u64 = 0x7f4a5231ff7eddd1;
const GOLDEN_RESULT_COMPOUND_NOCACHE: u64 = 0x163b3b86079ab225;
const GOLDEN_TRACE_COMPOUND_NOCACHE: u64 = 0x7f4a5231ff7eddd1;

#[test]
fn rule_engine_is_byte_identical_to_hand_rolled_mutations() {
    for (threads, cache, want_r, want_t) in [
        (1, true, GOLDEN_RESULT_CACHE, GOLDEN_TRACE_CACHE),
        (4, true, GOLDEN_RESULT_CACHE, GOLDEN_TRACE_CACHE),
        (1, false, GOLDEN_RESULT_NOCACHE, GOLDEN_TRACE_NOCACHE),
        (4, false, GOLDEN_RESULT_NOCACHE, GOLDEN_TRACE_NOCACHE),
    ] {
        let (r, trace) = run(golden_cfg(threads, cache, 1));
        assert_eq!(
            result_digest(&r),
            want_r,
            "result drifted from pre-rewrite golden (threads={threads} cache={cache})"
        );
        assert_eq!(
            trace_digest(&trace),
            want_t,
            "trace drifted from pre-rewrite golden (threads={threads} cache={cache})"
        );
    }
}

#[test]
fn compound_proposals_are_deterministic_across_threads_and_cache() {
    for (threads, cache, want_r, want_t) in [
        (
            1,
            true,
            GOLDEN_RESULT_COMPOUND_CACHE,
            GOLDEN_TRACE_COMPOUND_CACHE,
        ),
        (
            4,
            true,
            GOLDEN_RESULT_COMPOUND_CACHE,
            GOLDEN_TRACE_COMPOUND_CACHE,
        ),
        (
            1,
            false,
            GOLDEN_RESULT_COMPOUND_NOCACHE,
            GOLDEN_TRACE_COMPOUND_NOCACHE,
        ),
        (
            4,
            false,
            GOLDEN_RESULT_COMPOUND_NOCACHE,
            GOLDEN_TRACE_COMPOUND_NOCACHE,
        ),
    ] {
        let (r, trace) = run(golden_cfg(threads, cache, 3));
        assert_eq!(
            result_digest(&r),
            want_r,
            "compound result drifted (threads={threads} cache={cache}): {:#x}",
            result_digest(&r)
        );
        assert_eq!(
            trace_digest(&trace),
            want_t,
            "compound trace drifted (threads={threads} cache={cache}): {:#x}",
            trace_digest(&trace)
        );
    }
}

#[test]
fn compound_checkpoint_resume_reproduces_the_full_run() {
    let path =
        std::env::temp_dir().join(format!("overgen-rewrite-equiv-{}.json", std::process::id()));
    // Compound config, interrupted at proposal 16 of 24 and resumed: the
    // merged result must digest identically to the uninterrupted run —
    // i.e. the `compound` field survives the checkpoint round trip and
    // the rewrite engine's RNG stream re-synchronizes on resume.
    let cut = Dse::new(
        vec![workloads::by_name("fir").unwrap()],
        DseConfig {
            checkpoint: Some(CheckpointConfig {
                path: path.clone(),
                interval: 8,
            }),
            max_proposals: Some(16),
            ..golden_cfg(1, true, 3)
        },
    )
    .run()
    .unwrap();
    assert!(!cut.completed);
    let ck = Checkpoint::load(&path).unwrap();
    let mut resumed_cfg = ck;
    assert_eq!(
        resumed_cfg.config_mut().compound,
        3,
        "compound cap lost in the checkpoint round trip"
    );
    resumed_cfg.config_mut().checkpoint = None;
    let resumed = resumed_cfg
        .resume(vec![workloads::by_name("fir").unwrap()])
        .unwrap();
    assert!(resumed.completed);
    assert_eq!(
        result_digest(&resumed),
        GOLDEN_RESULT_COMPOUND_CACHE,
        "interrupted-then-resumed compound run drifted from the golden"
    );
    std::fs::remove_file(&path).ok();
}
