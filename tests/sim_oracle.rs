//! The differential oracle for the simulator-backed system DSE.
//!
//! `OVERGEN_SIM_ORACLE=1` makes `system_dse_sim` run a silent exhaustive
//! shadow sweep beside the analytically-pruned one and panic if the
//! winners (parameters or exact score bits) ever diverge — pruning must
//! be invisible to everything except wall-clock. This harness drives the
//! oracle across all 19 paper workloads, a seeded-random grid sweep, and
//! full DSE runs at 1 and 4 worker threads, asserting byte-identical
//! results and traces in every configuration.

use std::sync::Mutex;

use overgen::{workloads, Overlay};
use overgen_compiler::CompileOptions;
use overgen_dse::{system_dse_sim, Dse, DseConfig, DseResult, SystemDseBackend, SystemDseConfig};
use overgen_model::AnalyticModel;
use overgen_sim::SimConfig;
use overgen_telemetry::{Collector, Rng};

/// Serializes every env-touching section: `OVERGEN_SIM_ORACLE` is process
/// global and the tests in this binary run concurrently. (The oracle is
/// trace- and result-invisible by design, so a race would only add silent
/// shadow work — the lock keeps pruning tallies deterministic anyway.)
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_oracle<T>(on: bool, f: impl FnOnce() -> T) -> T {
    let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    if on {
        std::env::set_var("OVERGEN_SIM_ORACLE", "1");
    } else {
        std::env::remove_var("OVERGEN_SIM_ORACLE");
    }
    let out = f();
    std::env::remove_var("OVERGEN_SIM_ORACLE");
    out
}

/// A reduced grid (32 points) that keeps the debug-build sweeps quick
/// while still spanning every parameter axis.
fn small_cfg() -> SystemDseConfig {
    SystemDseConfig {
        max_tiles: 4,
        l2_banks_grid: vec![4, 16],
        l2_kb_grid: vec![256, 2048],
        noc_bw_grid: vec![32, 64],
        ..Default::default()
    }
}

#[test]
fn oracle_holds_on_all_19_workloads() {
    // The pruned sweep runs with the oracle armed: `system_dse_sim`
    // itself asserts winner identity against its exhaustive shadow, so
    // surviving the call is the differential check. The returned winner
    // must also exist for every workload (the general overlay fits the
    // default device comfortably).
    let overlay = Overlay::general();
    let kernels = workloads::all();
    assert_eq!(kernels.len(), 19);
    let cfg = small_cfg();
    // A tight cycle cap keeps the debug-build sweep quick on the largest
    // workloads; truncated runs are still deterministic reports, so the
    // pruned-vs-exhaustive property is exercised unchanged.
    let sim_cfg = SimConfig {
        max_cycles: 120_000,
        ..Default::default()
    };
    with_oracle(true, || {
        for k in &kernels {
            let app = overlay
                .compile(k)
                .unwrap_or_else(|e| panic!("{} failed to compile: {e}", k.name()));
            let per = vec![(&app.mdfg, &app.schedule, 1.0)];
            let got = system_dse_sim(
                &overlay.sys_adg.adg,
                &per,
                &AnalyticModel,
                &cfg,
                &sim_cfg,
                true,
            );
            let (sys, score) = got.unwrap_or_else(|| panic!("{} found no system", k.name()));
            assert!(score > 0.0, "{}: non-positive score", k.name());
            assert!(sys.tiles >= 1);
        }
    });
}

#[test]
fn pruned_and_exhaustive_return_identical_winners() {
    // Explicit pruned-vs-exhaustive equality (not just the internal
    // assert), including exact score bits, on a representative subset.
    let overlay = Overlay::general();
    let cfg = small_cfg();
    let sim_cfg = SimConfig::default();
    for name in ["fir", "gemm", "ellpack"] {
        let k = workloads::by_name(name).unwrap();
        let app = overlay.compile(&k).unwrap();
        let per = vec![(&app.mdfg, &app.schedule, 1.0)];
        let (pruned, exhaustive) = with_oracle(false, || {
            (
                system_dse_sim(
                    &overlay.sys_adg.adg,
                    &per,
                    &AnalyticModel,
                    &cfg,
                    &sim_cfg,
                    true,
                ),
                system_dse_sim(
                    &overlay.sys_adg.adg,
                    &per,
                    &AnalyticModel,
                    &cfg,
                    &sim_cfg,
                    false,
                ),
            )
        });
        let (p, e) = (pruned.unwrap(), exhaustive.unwrap());
        assert_eq!(p.0, e.0, "{name}: winner params diverged");
        assert_eq!(
            p.1.to_bits(),
            e.1.to_bits(),
            "{name}: winner score bits diverged"
        );
    }
}

#[test]
fn seeded_random_grids_agree() {
    // Random grid shapes, tile caps, and multi-workload weight mixes:
    // pruning must stay winner-invisible off the hand-picked defaults.
    let overlay = Overlay::general();
    let sim_cfg = SimConfig::default();
    let mut rng = Rng::seed_from_u64(0x0AC1E5);
    let apps: Vec<_> = ["fir", "gemm", "ellpack"]
        .iter()
        .map(|n| overlay.compile(&workloads::by_name(n).unwrap()).unwrap())
        .collect();
    let banks_pool = [2u32, 4, 8, 16];
    let kb_pool = [256u32, 512, 1024, 2048];
    let noc_pool = [32u32, 64];
    for trial in 0..8 {
        let pick = |rng: &mut Rng, pool: &[u32]| -> Vec<u32> {
            let n = rng.gen_range(1usize..=pool.len());
            pool[..n].to_vec()
        };
        let cfg = SystemDseConfig {
            max_tiles: rng.gen_range(1u32..=5),
            dram_channels: rng.gen_range(1u32..=2),
            l2_banks_grid: pick(&mut rng, &banks_pool),
            l2_kb_grid: pick(&mut rng, &kb_pool),
            noc_bw_grid: pick(&mut rng, &noc_pool),
            ..Default::default()
        };
        let per: Vec<_> = apps
            .iter()
            .map(|a| (&a.mdfg, &a.schedule, rng.gen_range(1u64..=4) as f64))
            .collect();
        let (pruned, exhaustive) = with_oracle(false, || {
            (
                system_dse_sim(
                    &overlay.sys_adg.adg,
                    &per,
                    &AnalyticModel,
                    &cfg,
                    &sim_cfg,
                    true,
                ),
                system_dse_sim(
                    &overlay.sys_adg.adg,
                    &per,
                    &AnalyticModel,
                    &cfg,
                    &sim_cfg,
                    false,
                ),
            )
        });
        match (pruned, exhaustive) {
            (None, None) => {}
            (Some(p), Some(e)) => {
                assert_eq!(p.0, e.0, "trial {trial}: winner params diverged");
                assert_eq!(
                    p.1.to_bits(),
                    e.1.to_bits(),
                    "trial {trial}: score bits diverged"
                );
            }
            (p, e) => panic!("trial {trial}: feasibility diverged: {p:?} vs {e:?}"),
        }
    }
}

/// One traced simulator-backed DSE run over the fir workload. The
/// (threads=1, oracle=on) leg is shared by two tests, so it is memoized.
fn traced_sim_dse(threads: usize, oracle: bool) -> (DseResult, String) {
    static BASELINE: std::sync::OnceLock<(DseResult, String)> = std::sync::OnceLock::new();
    if threads == 1 && oracle {
        return BASELINE
            .get_or_init(|| traced_sim_dse_uncached(1, true))
            .clone();
    }
    traced_sim_dse_uncached(threads, oracle)
}

fn traced_sim_dse_uncached(threads: usize, oracle: bool) -> (DseResult, String) {
    with_oracle(oracle, || {
        let (collector, ring) = Collector::ring(1 << 18);
        let _install = overgen_telemetry::install(collector);
        let cfg = DseConfig {
            iterations: 6,
            seed: 0x51A0C1,
            threads,
            compile: CompileOptions {
                max_unroll: 2,
                ..Default::default()
            },
            system: SystemDseConfig {
                backend: SystemDseBackend::Simulate { prune: true },
                ..small_cfg()
            },
            ..Default::default()
        };
        let domain = vec![workloads::by_name("fir").unwrap()];
        let result = Dse::new(domain, cfg).run().unwrap();
        (result, ring.to_jsonl())
    })
}

/// Comparable view of a run: objective bits, ADG fingerprint, annealing
/// history, and chosen variants.
type RunDigest = (u64, u64, Vec<(u64, u64)>, Vec<(String, u32)>);

fn digest(r: &DseResult) -> RunDigest {
    (
        r.objective.to_bits(),
        r.sys_adg.fingerprint(),
        r.history
            .iter()
            .map(|(h, o)| (h.to_bits(), o.to_bits()))
            .collect(),
        r.variants.iter().map(|(k, v)| (k.clone(), *v)).collect(),
    )
}

#[test]
fn oracle_dse_traces_are_identical_across_threads() {
    // With the oracle armed and pruning on, the full sim-backed DSE must
    // stay bit-identical in results AND byte-identical in traces at 1
    // and 4 worker threads (the sweep itself is serial by contract; the
    // per-workload scheduling fan-out is the threaded part).
    let (serial, trace_serial) = traced_sim_dse(1, true);
    let (parallel, trace_parallel) = traced_sim_dse(4, true);
    assert_eq!(digest(&serial), digest(&parallel));
    assert_eq!(serial.schedules, parallel.schedules);
    assert_eq!(serial.stats, parallel.stats);
    assert_eq!(trace_serial, trace_parallel, "threads changed the trace");
    assert!(!trace_serial.is_empty());
}

#[test]
fn oracle_mode_is_invisible_to_traces_and_results() {
    // The shadow sweep emits no spans, events, or counters: a run with
    // the oracle armed must be byte-identical to one without.
    let (with_oracle_run, trace_on) = traced_sim_dse(1, true);
    let (without, trace_off) = traced_sim_dse(1, false);
    assert_eq!(digest(&with_oracle_run), digest(&without));
    assert_eq!(with_oracle_run.stats, without.stats);
    assert_eq!(trace_on, trace_off, "oracle mode leaked into the trace");
}
