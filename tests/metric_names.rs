//! The metric-name registry check: every counter, gauge, histogram,
//! event type, and span name the system emits at runtime must appear in
//! the documented inventory of `overgen_telemetry::names`. A new metric
//! landing without a registry entry fails here, which keeps dashboards
//! and the DESIGN.md telemetry tables from silently drifting.

use overgen_compiler::CompileOptions;
use overgen_dse::{Dse, DseConfig, HeartbeatConfig, SystemDseConfig};
use overgen_telemetry::json::{self, Value};
use overgen_telemetry::{names, Collector, MetricKind};
use overgen_workloads as workloads;

/// A real run exercising the wide paths: preserving DSE with system-DSE,
/// repair, cache traffic, simulation, and the heartbeat.
fn exercised_collector() -> (std::sync::Arc<Collector>, String) {
    let (collector, ring) = Collector::ring(1 << 18);
    let _install = overgen_telemetry::install(collector.clone());
    let cfg = DseConfig {
        iterations: 30,
        seed: 0xDE7E12,
        system: SystemDseConfig::default(),
        heartbeat: Some(HeartbeatConfig {
            every: 10,
            stderr: false,
        }),
        compile: CompileOptions {
            max_unroll: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let domain = vec![
        workloads::by_name("fir").unwrap(),
        workloads::by_name("gemm").unwrap(),
    ];
    let r = Dse::new(domain, cfg).run().unwrap();
    let overlay = overgen::Overlay::from_dse(r, CompileOptions::default());
    let k = workloads::by_name("fir").unwrap();
    let app = overlay.compile(&k).unwrap();
    overlay.execute(&app);
    (collector, ring.to_jsonl())
}

#[test]
fn every_runtime_metric_name_is_documented() {
    let (collector, trace) = exercised_collector();

    for (name, kind) in collector.registry().metric_names() {
        let ok = match kind {
            MetricKind::Counter => names::is_documented_counter(name),
            MetricKind::Gauge => names::is_documented_gauge(name),
            MetricKind::Histogram => names::is_documented_histogram(name),
        };
        assert!(ok, "undocumented {kind:?} `{name}` — add it to names.rs");
    }

    for line in trace.lines().filter(|l| !l.trim().is_empty()) {
        let v = json::parse(line).expect("trace line parses");
        match v.get("type").and_then(Value::as_str) {
            Some("span") => {
                let name = v.get("name").and_then(Value::as_str).unwrap();
                assert!(
                    names::is_documented_span(name),
                    "undocumented span `{name}` — add it to names.rs"
                );
            }
            Some("metrics") | None => {}
            Some(kind) => assert!(
                names::is_documented_event(kind),
                "undocumented event `{kind}` — add it to names.rs"
            ),
        }
    }
}

#[test]
fn the_core_names_are_actually_emitted() {
    // Guards against the registry check passing vacuously: the exercised
    // run must produce the load-bearing names the docs talk about.
    let (collector, trace) = exercised_collector();
    let reg = collector.registry();
    // (`dse.cache.hit` is deliberately absent: a short annealing run may
    // never revisit a design point.)
    for counter in [
        "dse.cache.miss",
        "dse.heartbeat.count",
        "dse.iterations",
        "sched.attempts",
    ] {
        assert!(
            reg.counter_value(counter) > 0,
            "expected counter `{counter}` to be exercised"
        );
    }
    let names: Vec<&str> = reg.metric_names().iter().map(|(n, _)| *n).collect();
    assert!(names.contains(&"dse.heartbeat.eta_seconds"));
    for span in ["dse.run", "dse.iteration", "sched.place", "sim.run"] {
        assert!(
            trace.contains(&format!("\"name\":\"{span}\"")),
            "expected span `{span}` in the trace"
        );
    }
}
