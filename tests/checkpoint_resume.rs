//! The checkpoint/resume contract: an interrupted-then-resumed DSE run is
//! indistinguishable from an uninterrupted one — bit-identical results and
//! stats at any thread/chain count, and byte-identical traces when the
//! resumed collector continues the interrupted trace's cursor (the
//! interrupted trace truncated at the checkpoint's sequence number,
//! concatenated with the resumed trace, equals the uninterrupted trace).

use std::path::{Path, PathBuf};

use overgen_compiler::CompileOptions;
use overgen_dse::{Checkpoint, CheckpointConfig, Dse, DseConfig, DseResult};
use overgen_telemetry::Collector;
use overgen_workloads as workloads;

fn domain() -> Vec<overgen_ir::Kernel> {
    vec![workloads::by_name("fir").unwrap()]
}

fn ck_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("overgen-ckres-{}-{tag}.json", std::process::id()))
}

fn cfg(threads: usize, chains: usize, iterations: usize, exchange: usize) -> DseConfig {
    DseConfig {
        iterations,
        seed: 0xDE7E12,
        threads,
        chains,
        exchange_interval: exchange,
        compile: CompileOptions {
            max_unroll: 4,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// One traced DSE run with optional checkpointing and proposal budget.
fn traced(
    mut c: DseConfig,
    ck: Option<CheckpointConfig>,
    budget: Option<usize>,
) -> (DseResult, String) {
    let (collector, ring) = Collector::ring(1 << 18);
    let _install = overgen_telemetry::install(collector);
    c.checkpoint = ck;
    c.max_proposals = budget;
    let r = Dse::new(domain(), c).run().unwrap();
    (r, ring.to_jsonl())
}

/// Resume from `path` with `threads` workers, capturing the resumed trace.
fn traced_resume(path: &Path, threads: usize) -> (Checkpoint, DseResult, String) {
    let (collector, ring) = Collector::ring(1 << 18);
    let _install = overgen_telemetry::install(collector);
    let mut ck = Checkpoint::load(path).unwrap();
    ck.config_mut().threads = threads;
    let r = ck.resume(domain()).unwrap();
    (ck, r, ring.to_jsonl())
}

/// Comparable view of a run: objective bits, ADG fingerprint, annealing
/// history, and chosen variants.
type Digest = (u64, u64, Vec<(u64, u64)>, Vec<(String, u32)>);

fn digest(r: &DseResult) -> Digest {
    (
        r.objective.to_bits(),
        r.sys_adg.fingerprint(),
        r.history
            .iter()
            .map(|(h, o)| (h.to_bits(), o.to_bits()))
            .collect(),
        r.variants.iter().map(|(k, v)| (k.clone(), *v)).collect(),
    )
}

/// The interrupted trace truncated at the checkpoint cursor, plus the
/// resumed trace, reassembles the uninterrupted trace byte-for-byte.
fn assert_trace_composes(uninterrupted: &str, interrupted: &str, ck: &Checkpoint, resumed: &str) {
    let seq = ck.trace_seq().expect("checkpoint captured a trace cursor") as usize;
    let prefix: String = interrupted
        .lines()
        .take(seq)
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(
        uninterrupted,
        format!("{prefix}{resumed}"),
        "interrupted-prefix + resumed trace diverged from the uninterrupted trace"
    );
}

#[test]
fn resume_reproduces_uninterrupted_run_at_any_thread_count() {
    let iterations = 20;
    let path = ck_path("threads");
    let ckc = CheckpointConfig {
        path: path.clone(),
        interval: 5,
    };
    // Uninterrupted reference, checkpointing on (writes are invisible).
    let (full, trace_full) = traced(cfg(1, 1, iterations, 25), Some(ckc.clone()), None);
    // Checkpointing itself must not perturb the run.
    let (plain, trace_plain) = traced(cfg(1, 1, iterations, 25), None, None);
    assert_eq!(digest(&full), digest(&plain));
    assert_eq!(
        trace_full, trace_plain,
        "checkpoint writes leaked into the trace"
    );

    // Kill off-interval at proposal 7 — the graceful stop finalizes a
    // checkpoint there — then resume serially and with 4 workers.
    let (partial, trace_partial) = traced(cfg(1, 1, iterations, 25), Some(ckc), Some(7));
    assert!(!partial.completed, "budgeted run must report early stop");
    // A resumed run keeps checkpointing to the same path (crash safety
    // does not end at the first resume), so restore the interrupted
    // snapshot before each leg.
    let snapshot = std::fs::read(&path).unwrap();
    for threads in [1, 4] {
        std::fs::write(&path, &snapshot).unwrap();
        let (ck, resumed, trace_resumed) = traced_resume(&path, threads);
        assert_eq!(ck.done(), 7);
        assert!(resumed.completed);
        assert_eq!(
            digest(&full),
            digest(&resumed),
            "threads={threads} resume diverged"
        );
        assert_eq!(full.schedules, resumed.schedules);
        assert_eq!(full.stats, resumed.stats);
        assert_trace_composes(&trace_full, &trace_partial, &ck, &trace_resumed);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn kill_at_every_checkpoint_reproduces_the_run() {
    // Interval 1: every proposal boundary leaves a checkpoint. Killing at
    // each one and resuming must reproduce the uninterrupted run exactly —
    // including a budget of 0, which checkpoints right after the seed.
    let iterations = 8;
    let path = ck_path("everyk");
    let ckc = CheckpointConfig {
        path: path.clone(),
        interval: 1,
    };
    let (full, trace_full) = traced(cfg(1, 1, iterations, 25), Some(ckc.clone()), None);
    for k in 0..iterations {
        let (partial, trace_partial) =
            traced(cfg(1, 1, iterations, 25), Some(ckc.clone()), Some(k));
        assert!(!partial.completed);
        let (ck, resumed, trace_resumed) = traced_resume(&path, 1);
        assert_eq!(ck.done(), k);
        assert_eq!(digest(&full), digest(&resumed), "kill at {k} diverged");
        assert_eq!(full.stats, resumed.stats, "kill at {k} changed stats");
        assert_eq!(full.schedules, resumed.schedules);
        assert_trace_composes(&trace_full, &trace_partial, &ck, &trace_resumed);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn multi_chain_resume_at_aligned_boundary_is_exact() {
    // chains > 1: segment boundaries land on the absolute exchange grid,
    // so a kill aligned with both the exchange and checkpoint intervals
    // resumes with byte-identical traces too — at any worker count.
    let iterations = 12;
    let path = ck_path("chains");
    let ckc = CheckpointConfig {
        path: path.clone(),
        interval: 4,
    };
    let (full, trace_full) = traced(cfg(1, 3, iterations, 4), Some(ckc.clone()), None);
    let (partial, trace_partial) = traced(cfg(1, 3, iterations, 4), Some(ckc), Some(8));
    assert!(!partial.completed);
    let snapshot = std::fs::read(&path).unwrap();
    for threads in [1, 4] {
        std::fs::write(&path, &snapshot).unwrap();
        let (ck, resumed, trace_resumed) = traced_resume(&path, threads);
        assert_eq!(ck.done(), 8);
        assert_eq!(
            digest(&full),
            digest(&resumed),
            "threads={threads} multi-chain resume diverged"
        );
        assert_eq!(full.stats, resumed.stats);
        assert_eq!(full.schedules, resumed.schedules);
        assert_trace_composes(&trace_full, &trace_partial, &ck, &trace_resumed);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_files_are_deterministic() {
    // The same budgeted run writes byte-identical checkpoint files.
    let path_a = ck_path("det-a");
    let path_b = ck_path("det-b");
    for (path, tag) in [(&path_a, "a"), (&path_b, "b")] {
        let ckc = CheckpointConfig {
            path: (*path).clone(),
            interval: 5,
        };
        let (r, _) = traced(cfg(1, 1, 20, 25), Some(ckc), Some(7));
        assert!(!r.completed, "{tag}");
    }
    let a = std::fs::read(&path_a).unwrap();
    let b = std::fs::read(&path_b).unwrap();
    // The stored config embeds the checkpoint path itself; normalize it.
    let a = String::from_utf8(a).unwrap().replace("det-a", "det-X");
    let b = String::from_utf8(b).unwrap().replace("det-b", "det-X");
    assert_eq!(a, b, "checkpoint bytes are not deterministic");
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);
}

#[test]
fn top_level_resume_rebuilds_an_overlay() {
    // `overgen::resume` maps stored workload names back through the
    // workload registry and returns a ready Overlay.
    let path = ck_path("api");
    let ckc = CheckpointConfig {
        path: path.clone(),
        interval: 5,
    };
    let (full, _) = traced(cfg(1, 1, 10, 25), Some(ckc), Some(5));
    assert!(!full.completed);
    let overlay = overgen::resume(&path).unwrap();
    assert!(overlay.dse.is_some());
    assert!(overlay.fmax_mhz() > 0.0);
    let _ = std::fs::remove_file(&path);
}
