//! The observability contract: profiling and the heartbeat are invisible
//! to deterministic traces. For a fixed seed, enabling the phase profiler
//! and/or the run heartbeat must leave results bit-identical and the
//! deterministic-clock JSONL trace byte-identical, at any worker count.
//! The profiler must also actually attribute the run: at threads=1 at
//! least 95% of umbrella evaluation wall time lands in a named phase.

use std::sync::Arc;

use overgen_compiler::CompileOptions;
use overgen_dse::{Dse, DseConfig, DseResult, HeartbeatConfig};
use overgen_telemetry::{install_profiler, Collector, Phase, Profiler};
use overgen_workloads as workloads;

/// One traced DSE run over the fir workload. `profile` installs a fresh
/// profiler for the run; `heartbeat` enables the registry-only heartbeat.
fn traced_dse(
    threads: usize,
    iterations: usize,
    profile: bool,
    heartbeat: Option<HeartbeatConfig>,
) -> (DseResult, String, Option<Arc<Profiler>>) {
    let (collector, ring) = Collector::ring(1 << 18);
    let _install = overgen_telemetry::install(collector);
    let profiler = profile.then(Profiler::new);
    let _profile_install = profiler.as_ref().map(|p| install_profiler(p.clone()));

    let cfg = DseConfig {
        iterations,
        seed: 0xDE7E12, // deterministic: same seed for every run
        threads,
        heartbeat,
        compile: CompileOptions {
            max_unroll: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let domain = vec![workloads::by_name("fir").unwrap()];
    let result = Dse::new(domain, cfg).run().unwrap();
    (result, ring.to_jsonl(), profiler)
}

/// Comparable view of a run.
fn digest(r: &DseResult) -> (u64, u64, Vec<(u64, u64)>) {
    (
        r.objective.to_bits(),
        r.sys_adg.fingerprint(),
        r.history
            .iter()
            .map(|(h, o)| (h.to_bits(), o.to_bits()))
            .collect(),
    )
}

fn quiet_heartbeat() -> Option<HeartbeatConfig> {
    Some(HeartbeatConfig {
        every: 5,
        stderr: false,
    })
}

#[test]
fn profiler_and_heartbeat_are_trace_invisible() {
    let (base, trace_base, _) = traced_dse(1, 20, false, None);
    assert!(!trace_base.is_empty());

    for threads in [1, 4] {
        for profile in [false, true] {
            for heartbeat in [None, quiet_heartbeat()] {
                let label = format!(
                    "threads={threads} profile={profile} heartbeat={}",
                    heartbeat.is_some()
                );
                let (run, trace, _) = traced_dse(threads, 20, profile, heartbeat);
                assert_eq!(digest(&base), digest(&run), "{label} changed the result");
                assert_eq!(base.stats, run.stats, "{label} changed the stats");
                assert_eq!(trace_base, trace, "{label} changed the trace");
            }
        }
    }
}

#[test]
fn profiler_attributes_at_least_95_percent_serially() {
    // Coverage = attributed / eval-umbrella time. Parallel per-workload
    // fan-out overlaps phases (coverage can exceed 1), so the bound is
    // only meaningful at threads=1.
    let (_, _, profiler) = traced_dse(1, 30, true, None);
    let snap = profiler.expect("profiler installed").snapshot();
    assert!(
        snap.eval_total_us() > 0,
        "the run recorded no umbrella evaluation time"
    );
    assert!(!snap.rows.is_empty());
    let coverage = snap.coverage();
    assert!(
        coverage >= 0.95,
        "only {:.1}% of eval wall time attributed to a named phase",
        coverage * 100.0
    );
    // The big phases of a preserving DSE run must all have samples.
    for phase in [Phase::Validate, Phase::Schedule, Phase::Objective] {
        assert!(
            snap.phase_total_us(phase) > 0 || snap.rows.iter().any(|r| r.phase == phase),
            "phase {} never recorded",
            phase.name()
        );
    }
}

#[test]
fn heartbeat_publishes_gauges_without_touching_the_trace() {
    let (collector, ring) = Collector::ring(1 << 18);
    let _install = overgen_telemetry::install(collector.clone());
    let cfg = DseConfig {
        iterations: 20,
        seed: 0xDE7E12,
        heartbeat: quiet_heartbeat(),
        // The heartbeat refreshes at segment boundaries; segment ends land
        // on the exchange grid, so cut every 5 proposals to see 4 ticks.
        exchange_interval: 5,
        compile: CompileOptions {
            max_unroll: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let domain = vec![workloads::by_name("fir").unwrap()];
    Dse::new(domain, cfg).run().unwrap();

    let reg = collector.registry();
    assert!(
        reg.counter_value("dse.heartbeat.count") >= 4,
        "every=5 over 20 proposals must tick at least 4 times"
    );
    let names: Vec<&str> = reg.metric_names().iter().map(|(n, _)| *n).collect();
    assert!(names.contains(&"dse.heartbeat.proposals_per_sec"));
    assert!(names.contains(&"dse.heartbeat.progress"));
    // Registry-only: nothing heartbeat-related may reach the event trace.
    let trace = ring.to_jsonl();
    assert!(
        !trace.contains("heartbeat"),
        "heartbeat leaked into the trace"
    );
}
