//! The refactor-equivalence contract for the evaluation-pipeline split:
//! under the default objective, the DSE's results **and** its
//! deterministic JSONL traces are byte-identical to the pre-refactor
//! engine (the inline weighted-geomean-IPC + LUT-pressure formula).
//!
//! The golden digests below were captured on the tree immediately before
//! `EvalPipeline`/`Objective` were extracted from `engine.rs`, with this
//! exact run configuration and these exact digest functions. If this test
//! fails, the default objective's numeric path, the trace schema, or the
//! capture/replay ordering changed — all of which are breaking changes for
//! recorded experiments.
//!
//! Also covered here: the non-default objectives' observable behavior
//! (ConstrainedIpc rejecting infeasible proposals, IpcPerLut preferring
//! smaller designs) and a checkpoint/resume leg under the golden config.

use overgen_compiler::CompileOptions;
use overgen_dse::{
    Checkpoint, CheckpointConfig, DeviceBudget, Dse, DseConfig, DseResult, Objective,
};
use overgen_telemetry::Collector;
use overgen_workloads as workloads;

fn fnv1a64(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn fold_u64(h: u64, v: u64) -> u64 {
    fnv1a64(&v.to_le_bytes(), h)
}

/// Digest of everything a pre-refactor `DseResult` carried (the Pareto
/// frontier is new surface and deliberately excluded; `stats.infeasible`
/// is asserted to be 0 separately rather than hashed).
fn result_digest(r: &DseResult) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = fold_u64(h, r.objective.to_bits());
    h = fold_u64(h, r.sys_adg.fingerprint());
    h = fold_u64(h, r.history.len() as u64);
    for (t, o) in &r.history {
        h = fold_u64(h, t.to_bits());
        h = fold_u64(h, o.to_bits());
    }
    for (name, v) in &r.variants {
        h = fnv1a64(name.as_bytes(), h);
        h = fold_u64(h, u64::from(*v));
    }
    for v in [
        r.stats.iterations,
        r.stats.accepted,
        r.stats.invalid,
        r.stats.full_schedules,
        r.stats.repairs,
        r.stats.intact,
        r.stats.cache_hits,
        r.stats.cache_misses,
        r.stats.repair_fast,
        r.stats.repair_fallback,
    ] {
        h = fold_u64(h, v as u64);
    }
    h
}

fn trace_digest(trace: &str) -> u64 {
    fnv1a64(trace.as_bytes(), 0xcbf2_9ce4_8422_2325)
}

fn golden_cfg(threads: usize, cache: bool) -> DseConfig {
    DseConfig {
        iterations: 24,
        seed: 0xB0B5_CA7E,
        threads,
        chains: 2,
        exchange_interval: 8,
        cache,
        compile: CompileOptions {
            max_unroll: 4,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn run(cfg: DseConfig) -> (DseResult, String) {
    let (collector, ring) = Collector::ring(1 << 18);
    let _install = overgen_telemetry::install(collector);
    let domain = vec![workloads::by_name("fir").unwrap()];
    let result = Dse::new(domain, cfg).run().unwrap();
    (result, ring.to_jsonl())
}

// Captured pre-refactor (see module docs). The trace differs between
// cache modes only in the `cache_hits` field of the final `dse.done`
// event; thread count must not change a single byte.
const GOLDEN_RESULT_CACHE: u64 = 0xec61d8114f3cb3ad;
const GOLDEN_TRACE_CACHE: u64 = 0xb61ade7abb564cdb;
const GOLDEN_RESULT_NOCACHE: u64 = 0x4604efe105b411dc;
const GOLDEN_TRACE_NOCACHE: u64 = 0xd6ef98dbfbaf1d5e;

#[test]
fn default_objective_is_byte_identical_to_pre_refactor() {
    for (threads, cache, want_r, want_t) in [
        (1, true, GOLDEN_RESULT_CACHE, GOLDEN_TRACE_CACHE),
        (4, true, GOLDEN_RESULT_CACHE, GOLDEN_TRACE_CACHE),
        (1, false, GOLDEN_RESULT_NOCACHE, GOLDEN_TRACE_NOCACHE),
        (4, false, GOLDEN_RESULT_NOCACHE, GOLDEN_TRACE_NOCACHE),
    ] {
        let (r, trace) = run(golden_cfg(threads, cache));
        assert_eq!(
            r.stats.infeasible, 0,
            "the default objective must never resource-reject"
        );
        assert_eq!(
            result_digest(&r),
            want_r,
            "result drifted from pre-refactor golden (threads={threads} cache={cache})"
        );
        assert_eq!(
            trace_digest(&trace),
            want_t,
            "trace drifted from pre-refactor golden (threads={threads} cache={cache})"
        );
    }
}

#[test]
fn checkpoint_resume_reproduces_the_golden_result() {
    let path = std::env::temp_dir().join(format!(
        "overgen-objective-equiv-{}.json",
        std::process::id()
    ));
    // Same golden config, interrupted at proposal 16 of 24 and resumed:
    // the merged result must still digest to the pre-refactor golden.
    let cut = Dse::new(
        vec![workloads::by_name("fir").unwrap()],
        DseConfig {
            checkpoint: Some(CheckpointConfig {
                path: path.clone(),
                interval: 8,
            }),
            max_proposals: Some(16),
            ..golden_cfg(1, true)
        },
    )
    .run()
    .unwrap();
    assert!(!cut.completed);
    let ck = Checkpoint::load(&path).unwrap();
    let mut resumed_cfg = ck;
    resumed_cfg.config_mut().checkpoint = None;
    let resumed = resumed_cfg
        .resume(vec![workloads::by_name("fir").unwrap()])
        .unwrap();
    assert!(resumed.completed);
    assert_eq!(
        result_digest(&resumed),
        GOLDEN_RESULT_CACHE,
        "interrupted-then-resumed run drifted from the pre-refactor golden"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn pareto_front_has_no_dominated_points_and_is_deterministic() {
    let (a, _) = run(golden_cfg(1, true));
    let (b, _) = run(golden_cfg(4, true));
    assert_eq!(a.pareto, b.pareto, "frontier must be thread-independent");
    let pts = a.pareto.points();
    assert!(!pts.is_empty());
    for (i, p) in pts.iter().enumerate() {
        for (j, q) in pts.iter().enumerate() {
            if i == j {
                continue;
            }
            let dominated = q.ipc >= p.ipc
                && q.resources.lut <= p.resources.lut
                && q.resources.ff <= p.resources.ff
                && q.resources.bram <= p.resources.bram
                && q.resources.dsp <= p.resources.dsp;
            assert!(!dominated, "frontier holds a dominated point: {i} by {j}");
        }
    }
    // Canonical order: IPC non-increasing (ties trade off different
    // resource channels), LUTs ascending within a tie, no duplicates.
    for w in pts.windows(2) {
        assert!(w[0].ipc >= w[1].ipc);
        if w[0].ipc == w[1].ipc {
            assert!(w[0].resources.lut <= w[1].resources.lut);
        }
        assert_ne!(w[0], w[1]);
    }
}

#[test]
fn constrained_objective_changes_behavior_only_when_binding() {
    // A budget the whole trajectory fits under: identical *results* to the
    // default objective except for fitness-driven tie-breaks; critically,
    // nothing is rejected.
    let (r, _) = run(DseConfig {
        objective: Objective::ConstrainedIpc(DeviceBudget::vcu118()),
        ..golden_cfg(1, true)
    });
    assert_eq!(r.stats.infeasible, 0);
    assert!(r.objective > 0.0);

    // A tight budget must reject at least one growth proposal.
    let seed = Dse::seed_adg(&[workloads::by_name("fir").unwrap()]);
    let acc = overgen_model::accelerator_resources(&seed, &overgen_model::AnalyticModel);
    let (r, trace) = run(DseConfig {
        objective: Objective::ConstrainedIpc(DeviceBudget {
            name: "tight",
            limit: acc * 1.02,
            ..DeviceBudget::vcu118()
        }),
        ..golden_cfg(1, true)
    });
    assert!(r.stats.infeasible > 0);
    assert!(
        trace.contains("dse.eval.infeasible"),
        "rejections must be visible in the trace"
    );
}

#[test]
fn ipc_per_lut_picks_a_leaner_winner_or_ties() {
    let (dense, _) = run(golden_cfg(1, true));
    let (lean, _) = run(DseConfig {
        objective: Objective::IpcPerLut,
        ..golden_cfg(1, true)
    });
    let lut = |r: &DseResult| {
        overgen_model::accelerator_resources(&r.sys_adg.adg, &overgen_model::AnalyticModel).lut
    };
    // Area efficiency never selects a *larger* accelerator than the
    // IPC-first default on the same trajectory budget.
    assert!(lut(&lean) <= lut(&dense) + 1e-9);
}
