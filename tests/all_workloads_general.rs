//! Sweep: every paper workload compiles for and executes on the General
//! Overlay, with cross-checked invariants between the performance model
//! and the simulator.

use overgen::{workloads, Overlay};
use overgen_model::estimate_ipc;

#[test]
fn all_nineteen_workloads_run_on_the_general_overlay() {
    let overlay = Overlay::general();
    let mut failures = Vec::new();
    for k in workloads::all() {
        match overlay.compile(&k) {
            Ok(app) => {
                let r = overlay.execute(&app);
                assert!(!r.truncated, "{} truncated", k.name());
                assert!(r.cycles > 0 && r.ipc > 0.0, "{} empty run", k.name());
                // The simulator never exceeds the analytic upper bound.
                let spad_bw: f64 = overlay
                    .sys_adg
                    .adg
                    .nodes()
                    .filter_map(|(_, n)| n.as_spad().map(|s| f64::from(s.bw_bytes)))
                    .sum();
                let est = estimate_ipc(
                    &app.mdfg,
                    &overlay.sys_adg.sys,
                    spad_bw,
                    &app.schedule.placement,
                );
                let peak = app.mdfg.insts_per_firing() * f64::from(overlay.sys_adg.sys.tiles);
                assert!(
                    r.ipc <= peak + 1e-9,
                    "{}: sim ipc {} above theoretical peak {}",
                    k.name(),
                    r.ipc,
                    peak
                );
                let _ = est; // est is itself <= peak by construction
            }
            Err(e) => failures.push(format!("{}: {e}", k.name())),
        }
    }
    // The general overlay is the paper's catch-all design: everything maps.
    assert!(failures.is_empty(), "unmapped workloads: {failures:?}");
}

#[test]
fn tuned_variants_also_run() {
    let overlay = Overlay::general();
    for name in workloads::TUNING_SENSITIVE {
        if let Some(t) = workloads::og_tuned(name) {
            match overlay.compile(&t) {
                Ok(app) => {
                    let r = overlay.execute(&app);
                    assert!(!r.truncated, "OG-tuned {name} truncated");
                }
                Err(_) => {
                    // Tuned variants may be too wide for the general
                    // overlay (stencil-2d's 2-output body); the harness
                    // falls back to the untuned kernel, which must map.
                    assert!(
                        overlay.compile(&workloads::by_name(name).unwrap()).is_ok(),
                        "untuned {name} must map when tuned does not"
                    );
                }
            }
        }
    }
}

#[test]
fn reconfiguration_beats_reflash_for_every_kernel() {
    let overlay = Overlay::general();
    for k in workloads::all() {
        if let Ok(app) = overlay.compile(&k) {
            let r = overlay.reconfig_seconds(&app);
            assert!(
                r < 0.01,
                "{}: overlay reconfig {r} s is not << 1.1 s reflash",
                k.name()
            );
        }
    }
}
