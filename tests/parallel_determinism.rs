//! The parallel DSE contract: worker threads change wall-clock only.
//! For a fixed seed, any `threads` value must produce bit-identical
//! results AND byte-identical deterministic-clock JSONL traces — both for
//! the intra-proposal fan-out (threads axis) and for multi-chain
//! annealing (chains axis, where each chain's trace is captured on its
//! worker and replayed in chain order).

use overgen_compiler::CompileOptions;
use overgen_dse::{Dse, DseConfig, DseResult};
use overgen_telemetry::Collector;
use overgen_workloads as workloads;

/// One traced DSE run over the fir workload with the given parallelism.
fn traced_dse(threads: usize, chains: usize, iterations: usize) -> (DseResult, String) {
    traced_dse_exchanging(threads, chains, iterations, 25)
}

/// [`traced_dse`] with an explicit best-state exchange interval.
fn traced_dse_exchanging(
    threads: usize,
    chains: usize,
    iterations: usize,
    exchange_interval: usize,
) -> (DseResult, String) {
    let (collector, ring) = Collector::ring(1 << 18);
    let _install = overgen_telemetry::install(collector);

    let cfg = DseConfig {
        iterations,
        seed: 0xDE7E12, // deterministic: same seed for every run
        threads,
        chains,
        exchange_interval,
        compile: CompileOptions {
            max_unroll: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let domain = vec![workloads::by_name("fir").unwrap()];
    let result = Dse::new(domain, cfg).run().unwrap();
    (result, ring.to_jsonl())
}

/// Comparable view of a run: objective bits, ADG fingerprint, annealing
/// history, and chosen variants.
type Digest = (u64, u64, Vec<(u64, u64)>, Vec<(String, u32)>);

/// Everything observable about a run, in comparable form.
fn digest(r: &DseResult) -> Digest {
    (
        r.objective.to_bits(),
        r.sys_adg.fingerprint(),
        r.history
            .iter()
            .map(|(h, o)| (h.to_bits(), o.to_bits()))
            .collect(),
        r.variants.iter().map(|(k, v)| (k.clone(), *v)).collect(),
    )
}

#[test]
fn thread_count_does_not_change_results_or_traces() {
    let (serial, trace_serial) = traced_dse(1, 1, 20);
    for threads in [2, 4] {
        let (parallel, trace_parallel) = traced_dse(threads, 1, 20);
        assert_eq!(
            digest(&serial),
            digest(&parallel),
            "threads={threads} changed the result"
        );
        assert_eq!(serial.schedules, parallel.schedules);
        assert_eq!(serial.stats, parallel.stats);
        assert_eq!(
            trace_serial, trace_parallel,
            "threads={threads} changed the trace"
        );
    }
    assert!(!trace_serial.is_empty());
}

#[test]
fn worker_count_is_invisible_to_multi_chain_runs() {
    // chains=4 explores a different trajectory than chains=1 (that is the
    // point of the island model) — but the trajectory must not depend on
    // how many workers execute it.
    let (one_worker, trace_one) = traced_dse(1, 4, 12);
    let (four_workers, trace_four) = traced_dse(4, 4, 12);
    assert_eq!(digest(&one_worker), digest(&four_workers));
    assert_eq!(one_worker.schedules, four_workers.schedules);
    assert_eq!(one_worker.stats, four_workers.stats);
    assert_eq!(trace_one, trace_four);

    // Multi-chain accounting: every chain runs `iterations` proposals.
    assert_eq!(one_worker.stats.iterations, 4 * 12);
    // Simulated DSE hours are the max over concurrent chains (not the
    // sum): four chains must cost far less than four sequential runs.
    let (single_chain, _) = traced_dse(1, 1, 12);
    assert!(one_worker.dse_hours < single_chain.dse_hours * 3.0 + 1e-9);
}

#[test]
fn chain_count_changes_exploration_but_not_determinism() {
    // Re-running the same multi-chain config reproduces itself exactly.
    let (a, ta) = traced_dse_exchanging(2, 3, 10, 4);
    let (b, tb) = traced_dse_exchanging(2, 3, 10, 4);
    assert_eq!(digest(&a), digest(&b));
    assert_eq!(ta, tb);
    // Chains derive distinct seeds from Rng::split, so the exchange
    // events must appear in the trace.
    assert!(
        ta.contains("dse.exchange"),
        "multi-chain run emitted no exchange events"
    );
}

#[test]
fn long_runs_hit_the_evaluation_cache() {
    // An annealer revisits designs (rejected proposals return to the
    // current state); with 150 iterations the fingerprint-keyed cache
    // must see real traffic.
    let (r, _) = traced_dse(1, 1, 150);
    assert!(
        r.stats.cache_hits > 0,
        "150 iterations produced zero cache hits"
    );
    assert_eq!(
        r.stats.cache_hits + r.stats.cache_misses,
        r.stats.iterations + 1,
        "every proposal plus the seed must be exactly one cache lookup"
    );
}
