//! Cross-crate integration: the full OverGen pipeline — compile, DSE,
//! schedule, simulate — on real paper workloads.

use overgen::{generate, workloads, GenerateConfig, Overlay};
use overgen_compiler::CompileOptions;
use overgen_dse::DseConfig;
use overgen_hls::{explore, AutoDseConfig};
use overgen_ir::Suite;

fn quick_dse(iterations: usize, seed: u64) -> GenerateConfig {
    GenerateConfig {
        dse: DseConfig {
            iterations,
            seed,
            compile: CompileOptions {
                max_unroll: 8,
                ..Default::default()
            },
            ..Default::default()
        },
    }
}

#[test]
fn generate_compile_execute_dsp_domain() {
    let domain = workloads::suite(Suite::Dsp);
    let overlay = generate(&domain, &quick_dse(12, 1));
    overlay
        .sys_adg
        .validate()
        .expect("generated hardware is valid");
    let mut ran = 0;
    for k in &domain {
        let app = overlay
            .compile(k)
            .unwrap_or_else(|e| panic!("{} failed to map: {e}", k.name()));
        let report = overlay.execute(&app);
        assert!(!report.truncated, "{} truncated", k.name());
        assert!(report.cycles > 0);
        assert!(report.ipc > 0.0);
        ran += 1;
    }
    assert_eq!(ran, domain.len());
}

#[test]
fn overlay_is_competitive_with_hls_on_its_domain() {
    // Not an exact paper claim at tiny DSE scale; just sanity that the two
    // stacks land within two orders of magnitude and both are positive.
    let fir = workloads::by_name("fir").unwrap();
    let overlay = generate(std::slice::from_ref(&fir), &quick_dse(15, 3));
    let app = overlay.compile(&fir).expect("fir maps");
    let og = overlay.run_seconds(&app);
    let hls = explore(&fir, &AutoDseConfig::default()).best.seconds;
    let ratio = hls / og;
    assert!(
        (0.05..200.0).contains(&ratio),
        "fir OG {og} s vs HLS {hls} s (ratio {ratio})"
    );
}

#[test]
fn compile_and_reconfig_magnitudes_match_paper() {
    // Figure 17: compilation ~10^4x faster than an HLS flow; reconfig
    // ~10^4-10^5x faster than FPGA reflash (1.1 s).
    let overlay = Overlay::general();
    let k = workloads::by_name("gemm").unwrap();
    let app = overlay.compile(&k).expect("gemm maps");
    assert!(
        app.compile_seconds < 30.0,
        "compile {} s",
        app.compile_seconds
    );
    let reconf = overlay.reconfig_seconds(&app);
    let speedup = 1.1 / reconf;
    assert!(
        speedup > 1e3,
        "reconfig speedup only {speedup:.0}x ({reconf} s)"
    );
}

#[test]
fn unseen_workload_maps_onto_suite_overlay() {
    // The Q5 flexibility claim at integration scale: an overlay generated
    // without `ellpack` still runs it.
    let domain: Vec<_> = workloads::suite(Suite::MachSuite)
        .into_iter()
        .filter(|k| k.name() != "ellpack")
        .collect();
    let overlay = generate(&domain, &quick_dse(12, 5));
    let ellpack = workloads::by_name("ellpack").unwrap();
    let app = overlay
        .compile(&ellpack)
        .expect("unseen workload maps via variant relaxation");
    let report = overlay.execute(&app);
    assert!(!report.truncated);
}

#[test]
fn dse_history_is_monotone_and_accounted() {
    let overlay = generate(&workloads::suite(Suite::Vision), &quick_dse(10, 9));
    let p = overlay.dse.as_ref().expect("provenance recorded");
    assert!(p.dse_hours > 0.0);
    for w in p.history.windows(2) {
        assert!(w[1].1 >= w[0].1 - 1e-12, "best-so-far regressed");
        assert!(w[1].0 >= w[0].0, "simulated time went backwards");
    }
}
