//! Telemetry integration: a seeded deterministic pipeline run (DSE →
//! overlay → simulate) emits well-formed JSONL that is byte-identical
//! across runs, covers every instrumented subsystem, and whose registry
//! counters agree exactly with the `DseStats` snapshot the engine returns.

use std::collections::BTreeSet;

use overgen::{workloads, Overlay};
use overgen_compiler::CompileOptions;
use overgen_dse::{Dse, DseConfig, DseStats};
use overgen_ir::Suite;
use overgen_telemetry::{json, Collector};

/// One traced pipeline run; returns the JSONL trace, the engine's stats
/// snapshot, and the registry's view of the same counters.
fn traced_run() -> (String, DseStats, DseStats) {
    let (collector, ring) = Collector::ring(1 << 16);
    let _install = overgen_telemetry::install(collector.clone());

    let domain = workloads::suite(Suite::Dsp);
    let cfg = DseConfig {
        iterations: 8,
        seed: 42,
        compile: CompileOptions {
            max_unroll: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let result = Dse::new(domain.clone(), cfg).run().unwrap();
    let stats = result.stats;

    // Exercise the simulator under the same collector.
    let overlay = Overlay::from_dse(result, CompileOptions::default());
    let fir = workloads::by_name("fir").unwrap();
    if let Ok(app) = overlay.compile(&fir) {
        let _ = overlay.execute(&app);
    }

    let r = collector.registry();
    let registry_view = DseStats {
        iterations: r.counter_value("dse.iterations") as usize,
        accepted: r.counter_value("dse.accepted") as usize,
        invalid: r.counter_value("dse.invalid") as usize,
        full_schedules: r.counter_value("dse.full_schedules") as usize,
        repairs: r.counter_value("dse.repairs") as usize,
        intact: r.counter_value("dse.intact") as usize,
        cache_hits: r.counter_value("dse.cache.hit") as usize,
        cache_misses: r.counter_value("dse.cache.miss") as usize,
        repair_fast: r.counter_value("scheduler.repair.fast") as usize,
        repair_fallback: r.counter_value("scheduler.repair.fallback") as usize,
        infeasible: r.counter_value("dse.eval.infeasible") as usize,
    };
    (ring.to_jsonl(), stats, registry_view)
}

#[test]
fn deterministic_trace_is_byte_identical_and_well_formed() {
    let (trace_a, stats, registry_view) = traced_run();
    let (trace_b, _, _) = traced_run();
    assert_eq!(trace_a, trace_b, "seeded traces must be byte-identical");
    assert!(!trace_a.is_empty());

    // Every line parses as a JSON object with the fixed header keys.
    let mut kinds = BTreeSet::new();
    for line in trace_a.lines() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("malformed trace line {line:?}: {e}"));
        for key in ["seq", "t"] {
            assert!(v.get(key).and_then(json::Value::as_u64).is_some(), "{line}");
        }
        let kind = v
            .get("type")
            .and_then(json::Value::as_str)
            .unwrap_or_else(|| panic!("missing type: {line}"));
        if kind == "span" {
            kinds.insert(format!(
                "span:{}",
                v.get("name").and_then(json::Value::as_str).unwrap()
            ));
        } else {
            kinds.insert(kind.to_string());
        }
    }

    // The trace spans all four instrumented subsystems with at least six
    // distinct event types.
    let events: Vec<&String> = kinds.iter().filter(|k| !k.starts_with("span:")).collect();
    assert!(
        events.len() >= 6,
        "only {} event types: {events:?}",
        events.len()
    );
    for prefix in ["dse.", "sched.", "sim.", "compiler."] {
        assert!(
            kinds.iter().any(|k| k.starts_with(prefix)
                || k.strip_prefix("span:")
                    .is_some_and(|s| s.starts_with(prefix))),
            "no {prefix}* activity in trace: {kinds:?}"
        );
    }

    // The public DseStats snapshot and the registry counters are two views
    // of the same numbers.
    assert_eq!(stats, registry_view);
    assert!(stats.iterations > 0);
}

/// Regression for the silently-dropped `SimReport.truncated` flag: no
/// tier-1 workload may hit the simulator's cycle cap on the general
/// overlay, and the `sim.truncated` warning counter must stay zero.
#[test]
fn no_tier1_workload_truncates() {
    let (collector, _ring) = Collector::ring(1 << 16);
    let _install = overgen_telemetry::install(collector.clone());

    let overlay = Overlay::general();
    let mut ran = 0;
    for k in workloads::all() {
        if let Ok(app) = overlay.compile(&k) {
            let report = overlay.execute(&app);
            assert!(!report.truncated, "{} truncated", k.name());
            ran += 1;
        }
    }
    assert!(ran >= 15, "only {ran} workloads ran");
    assert_eq!(
        collector.registry().counter_value("sim.truncated"),
        0,
        "sim.truncated warnings were emitted"
    );
}
