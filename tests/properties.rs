//! Property-based tests over the core pipeline, driven by the in-tree
//! deterministic PRNG (`overgen_telemetry::Rng`) so they run with zero
//! external dependencies. The original `proptest` versions live in the
//! feature-gated module at the bottom.

use std::collections::BTreeMap;

use overgen_adg::{mesh, MeshSpec, SysAdg, SystemParams};
use overgen_compiler::{lower, CompileOptions, LowerChoices};
use overgen_dse::{
    random_mutation, AdgDelta, Dse, DseConfig, ParetoFront, ParetoPoint, RuleSet, TransformCtx,
};
use overgen_ir::{expr, DataType, Kernel, KernelBuilder, Suite};
use overgen_mdfg::Mdfg;
use overgen_scheduler::{
    repair, repair_with, schedule, RepairOptions, RepairOutcome, Schedule, ScheduleFootprint,
};
use overgen_telemetry::Rng;

/// A random but well-formed elementwise kernel.
fn arb_kernel(rng: &mut Rng, tag: usize) -> Kernel {
    let n = rng.gen_range(4u64..=4096);
    let shape = rng.gen_range(0usize..3);
    let dtype = match rng.gen_range(0usize..3) {
        0 => DataType::I16,
        1 => DataType::I64,
        _ => DataType::F64,
    };
    let accum = rng.gen_bool(0.5);
    let value = match shape {
        0 => expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
        1 => expr::load("a", expr::idx("i")) * expr::load("b", expr::idx("i")),
        _ => {
            expr::load("a", expr::idx("i")) * expr::load("b", expr::idx("i"))
                + expr::load("a", expr::idx("i"))
        }
    };
    let name = format!("rand{tag}");
    let b = KernelBuilder::new(&name, Suite::Dsp, dtype)
        .array_input("a", n)
        .array_input("b", n)
        .array_output("c", n)
        .loop_const("i", n);
    let b = if accum {
        b.accum("c", expr::idx("i"), value)
    } else {
        b.assign("c", expr::idx("i"), value)
    };
    b.build().expect("generated kernel is well formed")
}

/// The invariants any schedule must uphold against the hardware it claims
/// to map onto: complete assignment onto live nodes, exclusive PEs, routes
/// that start/end at assigned nodes and walk real edges.
fn assert_schedule_valid(sched: &Schedule, mdfg: &Mdfg, sys: &SysAdg) {
    assert_eq!(sched.assignment.len(), mdfg.node_count());
    for hw in sched.assignment.values() {
        assert!(sys.adg.contains(*hw), "assignment onto dead node");
    }
    let mut pes = std::collections::BTreeSet::new();
    for (mid, hw) in &sched.assignment {
        if mdfg.node(*mid).unwrap().as_inst().is_some() {
            assert!(pes.insert(*hw), "PE shared by two instructions");
        }
    }
    for ((src, dst), path) in &sched.routes {
        assert_eq!(path[0], sched.assignment[src]);
        assert_eq!(*path.last().unwrap(), sched.assignment[dst]);
        for w in path.windows(2) {
            assert!(sys.adg.has_edge(w[0], w[1]), "route uses missing edge");
        }
    }
}

/// The mapping portion of a schedule (everything except the re-scorable
/// performance estimate).
fn mapping_of(s: &Schedule) -> impl PartialEq + std::fmt::Debug + '_ {
    (
        &s.mdfg_name,
        s.variant,
        &s.assignment,
        &s.stream_engines,
        &s.routes,
        &s.placement,
    )
}

#[test]
fn repair_on_unchanged_hardware_is_intact_and_identical() {
    let mut rng = Rng::seed_from_u64(0x9E37);
    let mut exercised = 0;
    for tag in 0..24 {
        let k = arb_kernel(&mut rng, tag);
        let sys = SysAdg::new(mesh(&MeshSpec::general()), SystemParams::default());
        let mdfg = lower(
            &k,
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let Ok(prior) = schedule(&mdfg, &sys, None) else {
            continue; // not every random kernel fits; that is legal
        };
        let (repaired, outcome) = repair(&prior, &mdfg, &sys).expect("intact prior must repair");
        assert_eq!(outcome, RepairOutcome::Intact);
        assert_eq!(
            repaired, prior,
            "re-scoring unchanged hardware must be a no-op"
        );
        exercised += 1;
    }
    assert!(exercised >= 12, "only {exercised} kernels scheduled");
}

#[test]
fn repair_after_mutations_yields_valid_schedules() {
    let mut rng = Rng::seed_from_u64(0xDA7A);
    let mut repaired_some = 0;
    for tag in 0..24 {
        let k = arb_kernel(&mut rng, tag);
        let cap_pool = Dse::cap_pool(std::slice::from_ref(&k));
        let base = mesh(&MeshSpec::general());
        let sys = SysAdg::new(base.clone(), SystemParams::default());
        let mdfg = lower(
            &k,
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let Ok(prior) = schedule(&mdfg, &sys, None) else {
            continue;
        };

        // Mutate the hardware the way the annealer does, keeping the
        // schedule list updated by preserving transforms.
        let mut adg = base;
        let mut schedules = vec![prior];
        for _ in 0..rng.gen_range(1usize..=4) {
            let preserving = rng.gen_bool(0.7);
            let mut ctx = TransformCtx {
                cap_pool: &cap_pool,
                schedules: &mut schedules,
                preserving,
            };
            random_mutation(&mut adg, &mut ctx, &mut rng);
        }
        let prior = schedules.pop().unwrap();
        let mutated = SysAdg::new(adg, SystemParams::default());
        if mutated.validate().is_err() {
            continue;
        }

        match repair(&prior, &mdfg, &mutated) {
            Ok((s, RepairOutcome::Intact)) => {
                // Intact = every placement decision survived; routes may
                // still be re-found when a mutation opens a better path.
                assert_eq!(s.mdfg_name, prior.mdfg_name);
                assert_eq!(s.variant, prior.variant);
                assert_eq!(s.assignment, prior.assignment);
                assert_eq!(s.stream_engines, prior.stream_engines);
                assert_eq!(s.placement, prior.placement);
                assert_schedule_valid(&s, &mdfg, &mutated);
                repaired_some += 1;
            }
            Ok((s, RepairOutcome::Repaired { moved })) => {
                // `moved` counts assignment changes; a zero-move repair is
                // legal (e.g. only a route lost an edge) but must still
                // have rewritten *something* in the mapping.
                if moved == 0 {
                    assert!(
                        mapping_of(&s) != mapping_of(&prior),
                        "Repaired outcome left the mapping untouched"
                    );
                }
                assert_schedule_valid(&s, &mdfg, &mutated);
                repaired_some += 1;
            }
            Err(_) => {} // mutation broke the mapping beyond repair; legal
        }
    }
    assert!(repaired_some >= 8, "only {repaired_some} repairs exercised");
}

/// The repair engine's core contract: for any random mutation sequence,
/// the incremental fast path and a forced full re-placement produce the
/// *same* schedule — same validity, same mapping, same estimated latency
/// (bit-identical IPC), same outcome classification.
#[test]
fn incremental_repair_equals_full_replacement() {
    let mut rng = Rng::seed_from_u64(0x1C4E);
    let mut compared = 0;
    for tag in 0..32 {
        let k = arb_kernel(&mut rng, tag);
        let cap_pool = Dse::cap_pool(std::slice::from_ref(&k));
        let base = mesh(&MeshSpec::general());
        let sys = SysAdg::new(base.clone(), SystemParams::default());
        let mdfg = lower(
            &k,
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let Ok(prior) = schedule(&mdfg, &sys, None) else {
            continue;
        };

        let mut adg = base;
        let mut schedules = vec![prior];
        let mut footprint = ScheduleFootprint::Pure;
        for _ in 0..rng.gen_range(1usize..=4) {
            let preserving = rng.gen_bool(0.7);
            let mut ctx = TransformCtx {
                cap_pool: &cap_pool,
                schedules: &mut schedules,
                preserving,
            };
            let (_, fp) = random_mutation(&mut adg, &mut ctx, &mut rng);
            footprint = footprint.merge(fp);
        }
        let prior = schedules.pop().unwrap();
        let mutated = SysAdg::new(adg, SystemParams::default());
        if mutated.validate().is_err() {
            continue;
        }

        let opts = |incremental| RepairOptions {
            incremental,
            footprint: Some(footprint),
            scope: None,
        };
        let fast = repair_with(&prior, &mdfg, &mutated, &opts(true));
        let full = repair_with(&prior, &mdfg, &mutated, &opts(false));
        match (fast, full) {
            (Ok((fs, fo)), Ok((gs, go))) => {
                assert_eq!(fo, go, "outcome classification diverged");
                assert_eq!(
                    fs.est.ipc.to_bits(),
                    gs.est.ipc.to_bits(),
                    "estimated latency diverged"
                );
                assert_eq!(fs, gs, "incremental repair != full re-placement");
                assert_schedule_valid(&fs, &mdfg, &mutated);
                compared += 1;
            }
            (Err(_), Err(_)) => {} // both modes agree the mapping is dead
            (a, b) => panic!(
                "repair modes disagree on schedulability: fast={:?} full={:?}",
                a.is_ok(),
                b.is_ok()
            ),
        }
    }
    assert!(compared >= 10, "only {compared} repairs compared");
}

/// The rewrite engine's inference contract: for any seeded sequence of
/// random rule applications, the footprint inferred from the recorded
/// delta is never weaker than the rule's legacy hand classification —
/// i.e. a repair driven by the inferred class always scans at least as
/// much as the hand-maintained one would have.
#[test]
fn inferred_footprint_dominates_hand_classification() {
    let mut rng = Rng::seed_from_u64(0xF007);
    let set = RuleSet::legacy();
    let mut applied = 0;
    for tag in 0..16 {
        let k = arb_kernel(&mut rng, tag);
        let cap_pool = Dse::cap_pool(std::slice::from_ref(&k));
        let base = mesh(&MeshSpec::general());
        let sys = SysAdg::new(base.clone(), SystemParams::default());
        let mdfg = lower(&k, 0, &LowerChoices::default()).unwrap();
        let Ok(prior) = schedule(&mdfg, &sys, None) else {
            continue;
        };
        let mut adg = base;
        let mut schedules = vec![prior];
        for step in 0..12u64 {
            let preserving = rng.gen_bool(0.5);
            let mut ctx = TransformCtx {
                cap_pool: &cap_pool,
                schedules: &mut schedules,
                preserving,
            };
            let app = set.apply_random(&mut adg, &mut ctx, &mut rng, step);
            assert!(
                app.inferred >= app.hand,
                "rule {} inferred {:?} weaker than hand {:?}",
                app.rule,
                app.inferred,
                app.hand
            );
            // A pure inference must come from an empty recorded delta —
            // that pair is what licenses the scheduler's scoped exit.
            if app.inferred == ScheduleFootprint::Pure {
                assert!(app.delta.is_empty(), "pure inference from non-empty delta");
            }
            applied += 1;
        }
    }
    assert!(applied >= 100, "only {applied} rule applications checked");
}

/// Repair driven by the delta-derived scope must be observationally
/// identical to the unscoped incremental repair *and* to a full forced
/// re-placement: same outcome class, bit-identical schedule.
#[test]
fn scoped_repair_equals_unscoped_and_full_reschedule() {
    let mut rng = Rng::seed_from_u64(0x5C0B);
    let set = RuleSet::legacy();
    let mut compared = 0;
    for tag in 0..32 {
        let k = arb_kernel(&mut rng, tag);
        let cap_pool = Dse::cap_pool(std::slice::from_ref(&k));
        let base = mesh(&MeshSpec::general());
        let sys = SysAdg::new(base.clone(), SystemParams::default());
        let mdfg = lower(
            &k,
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let Ok(prior) = schedule(&mdfg, &sys, None) else {
            continue;
        };

        let mut adg = base;
        let mut schedules = vec![prior];
        let mut footprint = ScheduleFootprint::Pure;
        let mut delta = AdgDelta::new(0);
        for step in 0..rng.gen_range(1u64..=4) {
            let preserving = rng.gen_bool(0.7);
            let mut ctx = TransformCtx {
                cap_pool: &cap_pool,
                schedules: &mut schedules,
                preserving,
            };
            let app = set.apply_random(&mut adg, &mut ctx, &mut rng, step);
            footprint = footprint.merge(app.inferred);
            delta.absorb(&app.delta);
        }
        let prior = schedules.pop().unwrap();
        let mutated = SysAdg::new(adg, SystemParams::default());
        if mutated.validate().is_err() {
            continue;
        }

        let opts = |incremental, scope| RepairOptions {
            incremental,
            footprint: Some(footprint),
            scope,
        };
        let scoped = repair_with(&prior, &mdfg, &mutated, &opts(true, Some(delta.scope())));
        let unscoped = repair_with(&prior, &mdfg, &mutated, &opts(true, None));
        let full = repair_with(&prior, &mdfg, &mutated, &opts(false, None));
        match (scoped, unscoped, full) {
            (Ok((ss, so)), Ok((us, uo)), Ok((fs, fo))) => {
                assert_eq!(so, uo, "scope changed the outcome classification");
                assert_eq!(ss, us, "scoped repair != unscoped repair");
                assert_eq!(so, fo, "incremental outcome != full outcome");
                assert_eq!(ss, fs, "scoped repair != full re-placement");
                assert_schedule_valid(&ss, &mdfg, &mutated);
                compared += 1;
            }
            (Err(_), Err(_), Err(_)) => {} // all three agree the mapping is dead
            (a, b, c) => panic!(
                "repair modes disagree on schedulability: scoped={:?} unscoped={:?} full={:?}",
                a.is_ok(),
                b.is_ok(),
                c.is_ok()
            ),
        }
    }
    assert!(compared >= 10, "only {compared} repairs compared");
}

#[test]
fn cached_evaluations_equal_fresh_evaluations() {
    // Identical configs except for the cache must walk identical
    // trajectories and land on bit-identical results: a cache hit is
    // observationally a fresh evaluation.
    let mut rng = Rng::seed_from_u64(0xCAC4E);
    for tag in 0..3 {
        let k = arb_kernel(&mut rng, tag);
        let mk_cfg = |cache: bool| DseConfig {
            iterations: 8,
            seed: 0xBEEF + tag as u64,
            cache,
            compile: CompileOptions {
                max_unroll: 4,
                ..Default::default()
            },
            ..Default::default()
        };
        let on = Dse::new(vec![k.clone()], mk_cfg(true)).run().unwrap();
        let off = Dse::new(vec![k], mk_cfg(false)).run().unwrap();
        assert_eq!(on.objective.to_bits(), off.objective.to_bits());
        assert_eq!(on.history, off.history);
        assert_eq!(on.variants, off.variants);
        assert_eq!(on.schedules, off.schedules);
        assert_eq!(
            on.sys_adg.fingerprint(),
            off.sys_adg.fingerprint(),
            "cache changed the chosen hardware"
        );
        assert_eq!((off.stats.cache_hits, off.stats.cache_misses), (0, 0));
    }
}

#[test]
fn dse_stats_account_every_cache_lookup() {
    let mut rng = Rng::seed_from_u64(0x10CA);
    let k = arb_kernel(&mut rng, 99);
    let cfg = DseConfig {
        iterations: 12,
        compile: CompileOptions {
            max_unroll: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let r = Dse::new(vec![k], cfg).run().unwrap();
    // one lookup per annealing iteration plus the seed evaluation(s)
    assert!(r.stats.cache_hits + r.stats.cache_misses > r.stats.iterations);
    assert!(r.stats.cache_misses >= 1);
}

/// The Pareto frontier's algebraic contract over random point clouds:
/// the survivors are exactly the non-dominated subset of the input, the
/// canonical result is independent of insertion order, and merging split
/// halves equals building from the whole.
#[test]
fn pareto_front_is_the_non_dominated_subset_in_canonical_order() {
    // Externally-checked dominance, mirroring the documented semantics
    // (IPC maximized, all four resource channels minimized).
    fn dominates(p: &ParetoPoint, q: &ParetoPoint) -> bool {
        let no_worse = p.ipc >= q.ipc
            && p.resources.lut <= q.resources.lut
            && p.resources.ff <= q.resources.ff
            && p.resources.bram <= q.resources.bram
            && p.resources.dsp <= q.resources.dsp;
        no_worse && (p != q)
    }

    let mut rng = Rng::seed_from_u64(0x9A12_E701);
    for round in 0..48 {
        // Coarse grid coordinates so domination, ties, and exact
        // duplicates all actually occur in the sample.
        let n = rng.gen_range(1usize..=40);
        let mut pts = Vec::with_capacity(n);
        for _ in 0..n {
            let mut q = |scale: f64| rng.gen_range(0u64..6) as f64 * scale;
            pts.push(ParetoPoint::new(
                q(0.5),
                overgen_model::Resources {
                    lut: q(1000.0),
                    ff: q(500.0),
                    bram: q(8.0),
                    dsp: q(4.0),
                },
            ));
        }

        let front = ParetoFront::from_points(pts.iter().copied());
        assert!(!front.is_empty(), "round {round}: nonempty input");
        for (i, p) in front.points().iter().enumerate() {
            assert!(pts.contains(p), "round {round}: frontier invented a point");
            assert!(
                !pts.iter().any(|q| dominates(q, p)),
                "round {round}: point {i} is dominated by an input point"
            );
        }
        for p in &pts {
            assert!(
                front.points().contains(p) || front.points().iter().any(|q| dominates(q, p)),
                "round {round}: input point dropped without a dominator"
            );
        }
        for w in front.points().windows(2) {
            assert!(w[0].ipc >= w[1].ipc, "round {round}: order broken");
            assert_ne!(w[0], w[1], "round {round}: duplicate survived");
        }

        // Insertion-order independence: a Fisher-Yates shuffle must land
        // on the identical canonical frontier.
        let mut shuffled = pts.clone();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.gen_range(0usize..=i));
        }
        assert_eq!(
            front,
            ParetoFront::from_points(shuffled),
            "round {round}: frontier depends on insertion order"
        );

        // Merge of split halves equals the frontier of the whole.
        let mid = pts.len() / 2;
        let mut left = ParetoFront::from_points(pts[..mid].iter().copied());
        left.merge(&ParetoFront::from_points(pts[mid..].iter().copied()));
        assert_eq!(front, left, "round {round}: merge diverged");
    }
}

/// A prior schedule for workload maps survives round-tripping through the
/// DSE result: every returned schedule satisfies the validity invariants
/// on the returned hardware.
#[test]
fn dse_results_carry_valid_schedules() {
    let mut rng = Rng::seed_from_u64(0x5EED);
    let k = arb_kernel(&mut rng, 7);
    let cfg = DseConfig {
        iterations: 6,
        compile: CompileOptions {
            max_unroll: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let r = Dse::new(vec![k], cfg).run().unwrap();
    let by_variant: BTreeMap<&String, u32> = r.variants.iter().map(|(k, v)| (k, *v)).collect();
    for (name, sched) in &r.schedules {
        let variant = by_variant[name];
        let mdfg = r.mdfgs[name]
            .iter()
            .find(|m| m.variant() == variant)
            .expect("chosen variant exists");
        assert_schedule_valid(sched, mdfg, &r.sys_adg);
    }
}

/// The analytic steady-state model is a true lower bound: for seeded
/// random (kernel, schedule, system-grid-point) pairs, the closed-form
/// cycle count never exceeds what the cycle-stepped simulator reports
/// (and its IPC upper bound never undercuts the simulated IPC). This is
/// the soundness property the system-DSE pruning rests on (DESIGN.md
/// §12).
#[test]
fn analytic_bound_never_exceeds_simulated_cycles() {
    use overgen_sim::{analytic_cycles, simulate, SimConfig};

    let mut rng = Rng::seed_from_u64(0xA11A1);
    let banks = [2u32, 4, 8, 16];
    let kbs = [16u32, 256, 512, 1024, 2048];
    let nocs = [16u32, 32, 64, 128];
    let mut exercised = 0;
    for tag in 0..20 {
        let k = arb_kernel(&mut rng, tag);
        let adg = mesh(&MeshSpec::general());
        let mdfg = lower(
            &k,
            0,
            &LowerChoices {
                unroll: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let sys0 = SysAdg::new(adg.clone(), SystemParams::default());
        let Ok(sched) = schedule(&mdfg, &sys0, None) else {
            continue; // not every random kernel fits; that is legal
        };
        for _ in 0..4 {
            let sys = SystemParams {
                tiles: rng.gen_range(1u32..=16),
                l2_banks: banks[rng.gen_range(0usize..banks.len())],
                l2_kb: kbs[rng.gen_range(0usize..kbs.len())],
                noc_bw_bytes: nocs[rng.gen_range(0usize..nocs.len())],
                dram_channels: rng.gen_range(1u32..=4),
            };
            let sys_adg = SysAdg::new(adg.clone(), sys);
            let cfg = SimConfig::default();
            let lb = analytic_cycles(&mdfg, &sched, &sys_adg, &cfg);
            let r = simulate(&mdfg, &sched, &sys_adg, &cfg);
            assert!(
                lb <= r.cycles,
                "{}: analytic {lb} > simulated {} at {sys:?}",
                k.name(),
                r.cycles
            );
            exercised += 1;
        }
    }
    assert!(exercised >= 40, "only {exercised} pairs exercised");
}

// Gated: requires the `proptest-tests` feature AND restoring the proptest
// dev-dependency in the root Cargo.toml (removed for offline builds).
#[cfg(feature = "proptest-tests")]
mod with_proptest {
    use proptest::prelude::*;

    use overgen_adg::{mesh, AdgSummary, MeshSpec, SysAdg, SystemParams};
    use overgen_compiler::{compile_variants, lower, CompileOptions, LowerChoices};
    use overgen_ir::{expr, AffineExpr, DataType, Kernel, KernelBuilder, Suite};
    use overgen_scheduler::schedule;
    use overgen_sim::{simulate, SimConfig};

    /// A random but well-formed elementwise kernel.
    fn arb_kernel() -> impl Strategy<Value = Kernel> {
        (
            1u64..=4096, // n
            0usize..3,   // op shape selector
            prop_oneof![
                Just(DataType::I16),
                Just(DataType::I64),
                Just(DataType::F64)
            ],
            any::<bool>(), // accumulate
        )
            .prop_map(|(n, shape, dtype, accum)| {
                let n = n.max(4);
                let value = match shape {
                    0 => expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
                    1 => expr::load("a", expr::idx("i")) * expr::load("b", expr::idx("i")),
                    _ => {
                        expr::load("a", expr::idx("i")) * expr::load("b", expr::idx("i"))
                            + expr::load("a", expr::idx("i"))
                    }
                };
                let b = KernelBuilder::new("rand", Suite::Dsp, dtype)
                    .array_input("a", n)
                    .array_input("b", n)
                    .array_output("c", n)
                    .loop_const("i", n);
                let b = if accum {
                    b.accum("c", expr::idx("i"), value)
                } else {
                    b.assign("c", expr::idx("i"), value)
                };
                b.build().expect("generated kernel is well formed")
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn compile_variants_always_validate(k in arb_kernel()) {
            let vs = compile_variants(&k, &CompileOptions::default()).unwrap();
            prop_assert!(!vs.is_empty());
            for v in &vs {
                v.validate().unwrap();
                // unrolls never exceed the innermost trip count
                prop_assert!(u64::from(v.unroll()) <= k.nest().innermost().unwrap().trip.max());
                // firing count covers the iteration space
                prop_assert!(v.firings() * f64::from(v.unroll()) >= k.total_iterations());
            }
        }

        #[test]
        fn schedule_assignments_are_exclusive_and_complete(k in arb_kernel()) {
            let sys = SysAdg::new(mesh(&MeshSpec::general()), SystemParams::default());
            let mdfg = lower(&k, 0, &LowerChoices { unroll: 2, ..Default::default() }).unwrap();
            let sched = match schedule(&mdfg, &sys, None) {
                Ok(s) => s,
                Err(_) => return Ok(()), // not all random kernels fit; that is legal
            };
            // every mdfg node assigned to live hardware
            prop_assert_eq!(sched.assignment.len(), mdfg.node_count());
            for hw in sched.assignment.values() {
                prop_assert!(sys.adg.contains(*hw));
            }
            // dedicated PEs: no two instructions share one
            let mut pes = std::collections::BTreeSet::new();
            for (mid, hw) in &sched.assignment {
                if mdfg.node(*mid).unwrap().as_inst().is_some() {
                    prop_assert!(pes.insert(*hw), "PE shared by two instructions");
                }
            }
            // routes start/end at assigned nodes and use real edges
            for ((src, dst), path) in &sched.routes {
                prop_assert_eq!(path[0], sched.assignment[src]);
                prop_assert_eq!(*path.last().unwrap(), sched.assignment[dst]);
                for w in path.windows(2) {
                    prop_assert!(sys.adg.has_edge(w[0], w[1]));
                }
            }
        }

        #[test]
        fn simulation_terminates_and_conserves_work(k in arb_kernel()) {
            let sys = SysAdg::new(mesh(&MeshSpec::general()), SystemParams::default());
            let mdfg = lower(&k, 0, &LowerChoices { unroll: 2, ..Default::default() }).unwrap();
            let sched = match schedule(&mdfg, &sys, None) {
                Ok(s) => s,
                Err(_) => return Ok(()),
            };
            let r = simulate(&mdfg, &sched, &sys, &SimConfig::default());
            prop_assert!(!r.truncated);
            // all firings delivered for this tile's share
            let tiles = u64::from(sys.sys.tiles);
            let expect = (mdfg.firings() as u64).div_ceil(tiles);
            prop_assert_eq!(r.firings, expect);
            // IPC is bounded by the theoretical peak
            prop_assert!(r.ipc <= mdfg.insts_per_firing() * tiles as f64 + 1e-9);
        }

        #[test]
        fn affine_range_contains_samples(
            c0 in -50i64..50,
            c1 in -4i64..4,
            c2 in -4i64..4,
            n1 in 1u64..40,
            n2 in 1u64..40,
        ) {
            let e = AffineExpr::var("x").scaled(c1) + AffineExpr::var("y").scaled(c2);
            let e = e.offset(c0);
            let extent = |v: &str| -> Option<u64> {
                match v { "x" => Some(n1), "y" => Some(n2), _ => None }
            };
            let (lo, hi) = e.value_range(&extent);
            for x in [0, (n1 - 1) / 2, n1 - 1] {
                for y in [0, (n2 - 1) / 2, n2 - 1] {
                    let mut env = std::collections::BTreeMap::new();
                    env.insert("x".to_string(), x as i64);
                    env.insert("y".to_string(), y as i64);
                    let v = e.eval(&env);
                    prop_assert!(v >= lo && v <= hi, "{v} outside [{lo},{hi}]");
                }
            }
        }

        #[test]
        fn mesh_specs_always_build_valid_graphs(
            rows in 1usize..5,
            cols in 1usize..6,
            in_ports in 1usize..8,
            out_ports in 1usize..6,
            width in prop_oneof![Just(8u16), Just(16), Just(32), Just(64)],
        ) {
            let spec = MeshSpec {
                rows,
                cols,
                in_ports,
                out_ports,
                port_width_bytes: width,
                ..MeshSpec::default()
            };
            let adg = mesh(&spec);
            adg.validate().unwrap();
            let s = AdgSummary::of(&adg);
            prop_assert_eq!(s.pes, rows * cols);
            prop_assert_eq!(s.switches, (rows + 1) * (cols + 1));
            prop_assert_eq!(s.in_port_bw, in_ports as u64 * u64::from(width));
        }
    }
}
