// Gated: requires the `proptest-tests` feature AND restoring the proptest
// dev-dependency in the root Cargo.toml (removed for offline builds).
#![cfg(feature = "proptest-tests")]

//! Property-based tests over the core pipeline: randomly generated
//! kernels and fabrics must never break the compile -> schedule ->
//! simulate invariants.

use proptest::prelude::*;

use overgen_adg::{mesh, AdgSummary, MeshSpec, SysAdg, SystemParams};
use overgen_compiler::{compile_variants, lower, CompileOptions, LowerChoices};
use overgen_ir::{expr, AffineExpr, DataType, Kernel, KernelBuilder, Suite};
use overgen_scheduler::schedule;
use overgen_sim::{simulate, SimConfig};

/// A random but well-formed elementwise kernel.
fn arb_kernel() -> impl Strategy<Value = Kernel> {
    (
        1u64..=4096, // n
        0usize..3,   // op shape selector
        prop_oneof![
            Just(DataType::I16),
            Just(DataType::I64),
            Just(DataType::F64)
        ],
        any::<bool>(), // accumulate
    )
        .prop_map(|(n, shape, dtype, accum)| {
            let n = n.max(4);
            let value = match shape {
                0 => expr::load("a", expr::idx("i")) + expr::load("b", expr::idx("i")),
                1 => expr::load("a", expr::idx("i")) * expr::load("b", expr::idx("i")),
                _ => {
                    expr::load("a", expr::idx("i")) * expr::load("b", expr::idx("i"))
                        + expr::load("a", expr::idx("i"))
                }
            };
            let b = KernelBuilder::new("rand", Suite::Dsp, dtype)
                .array_input("a", n)
                .array_input("b", n)
                .array_output("c", n)
                .loop_const("i", n);
            let b = if accum {
                b.accum("c", expr::idx("i"), value)
            } else {
                b.assign("c", expr::idx("i"), value)
            };
            b.build().expect("generated kernel is well formed")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compile_variants_always_validate(k in arb_kernel()) {
        let vs = compile_variants(&k, &CompileOptions::default()).unwrap();
        prop_assert!(!vs.is_empty());
        for v in &vs {
            v.validate().unwrap();
            // unrolls never exceed the innermost trip count
            prop_assert!(u64::from(v.unroll()) <= k.nest().innermost().unwrap().trip.max());
            // firing count covers the iteration space
            prop_assert!(v.firings() * f64::from(v.unroll()) >= k.total_iterations());
        }
    }

    #[test]
    fn schedule_assignments_are_exclusive_and_complete(k in arb_kernel()) {
        let sys = SysAdg::new(mesh(&MeshSpec::general()), SystemParams::default());
        let mdfg = lower(&k, 0, &LowerChoices { unroll: 2, ..Default::default() }).unwrap();
        let sched = match schedule(&mdfg, &sys, None) {
            Ok(s) => s,
            Err(_) => return Ok(()), // not all random kernels fit; that is legal
        };
        // every mdfg node assigned to live hardware
        prop_assert_eq!(sched.assignment.len(), mdfg.node_count());
        for hw in sched.assignment.values() {
            prop_assert!(sys.adg.contains(*hw));
        }
        // dedicated PEs: no two instructions share one
        let mut pes = std::collections::BTreeSet::new();
        for (mid, hw) in &sched.assignment {
            if mdfg.node(*mid).unwrap().as_inst().is_some() {
                prop_assert!(pes.insert(*hw), "PE shared by two instructions");
            }
        }
        // routes start/end at assigned nodes and use real edges
        for ((src, dst), path) in &sched.routes {
            prop_assert_eq!(path[0], sched.assignment[src]);
            prop_assert_eq!(*path.last().unwrap(), sched.assignment[dst]);
            for w in path.windows(2) {
                prop_assert!(sys.adg.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn simulation_terminates_and_conserves_work(k in arb_kernel()) {
        let sys = SysAdg::new(mesh(&MeshSpec::general()), SystemParams::default());
        let mdfg = lower(&k, 0, &LowerChoices { unroll: 2, ..Default::default() }).unwrap();
        let sched = match schedule(&mdfg, &sys, None) {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        let r = simulate(&mdfg, &sched, &sys, &SimConfig::default());
        prop_assert!(!r.truncated);
        // all firings delivered for this tile's share
        let tiles = u64::from(sys.sys.tiles);
        let expect = (mdfg.firings() as u64).div_ceil(tiles);
        prop_assert_eq!(r.firings, expect);
        // IPC is bounded by the theoretical peak
        prop_assert!(r.ipc <= mdfg.insts_per_firing() * tiles as f64 + 1e-9);
    }

    #[test]
    fn affine_range_contains_samples(
        c0 in -50i64..50,
        c1 in -4i64..4,
        c2 in -4i64..4,
        n1 in 1u64..40,
        n2 in 1u64..40,
    ) {
        let e = AffineExpr::var("x").scaled(c1) + AffineExpr::var("y").scaled(c2);
        let e = e.offset(c0);
        let extent = |v: &str| -> Option<u64> {
            match v { "x" => Some(n1), "y" => Some(n2), _ => None }
        };
        let (lo, hi) = e.value_range(&extent);
        for x in [0, (n1 - 1) / 2, n1 - 1] {
            for y in [0, (n2 - 1) / 2, n2 - 1] {
                let mut env = std::collections::BTreeMap::new();
                env.insert("x".to_string(), x as i64);
                env.insert("y".to_string(), y as i64);
                let v = e.eval(&env);
                prop_assert!(v >= lo && v <= hi, "{v} outside [{lo},{hi}]");
            }
        }
    }

    #[test]
    fn mesh_specs_always_build_valid_graphs(
        rows in 1usize..5,
        cols in 1usize..6,
        in_ports in 1usize..8,
        out_ports in 1usize..6,
        width in prop_oneof![Just(8u16), Just(16), Just(32), Just(64)],
    ) {
        let spec = MeshSpec {
            rows,
            cols,
            in_ports,
            out_ports,
            port_width_bytes: width,
            ..MeshSpec::default()
        };
        let adg = mesh(&spec);
        adg.validate().unwrap();
        let s = AdgSummary::of(&adg);
        prop_assert_eq!(s.pes, rows * cols);
        prop_assert_eq!(s.switches, (rows + 1) * (cols + 1));
        prop_assert_eq!(s.in_port_bw, in_ports as u64 * u64::from(width));
    }
}
