//! The multi-tenant service contract (DESIGN.md §13): worker count and
//! co-tenant scheduling change wall-clock only. N concurrent jobs must
//! produce byte-identical per-job traces and results to N sequential
//! runs, a job through the service must match a solo `Dse::run`, and a
//! warm shared store must serve cross-job hits without perturbing a
//! single byte of any tenant's artifacts.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use overgen_compiler::CompileOptions;
use overgen_dse::{Dse, DseConfig, DseResult};
use overgen_service::{JobRequest, JobServer, JobStatus, ServiceConfig};
use overgen_workloads as workloads;

fn temp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("overgen-service-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn job_config(iterations: usize, seed: u64) -> DseConfig {
    DseConfig {
        iterations,
        seed,
        threads: 1,
        compile: CompileOptions {
            max_unroll: 4,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn job(name: &str, workload: &str, seed: u64) -> JobRequest {
    JobRequest {
        name: name.to_string(),
        kernels: vec![workloads::by_name(workload).unwrap()],
        config: job_config(12, seed),
    }
}

/// A four-tenant fleet: two workloads, overlapping domains so tenants can
/// share store entries.
fn fleet() -> Vec<JobRequest> {
    vec![
        job("tenant-a", "fir", 11),
        job("tenant-b", "fir", 22),
        job("tenant-c", "mm", 11),
        job("tenant-d", "fir", 11), // same domain+seed as tenant-a
    ]
}

/// Run a fleet to completion and return each job's on-disk artifacts
/// (trace.jsonl bytes, result.json bytes) by job name.
fn run_fleet(
    root: &Path,
    workers: usize,
    jobs: Vec<JobRequest>,
) -> BTreeMap<String, (String, String)> {
    let names: Vec<String> = jobs.iter().map(|j| j.name.clone()).collect();
    let server = JobServer::start(ServiceConfig {
        root: root.to_path_buf(),
        workers,
        store: true,
    })
    .unwrap();
    let ids: Vec<_> = jobs
        .into_iter()
        .map(|j| server.submit(j).unwrap())
        .collect();
    for id in ids {
        assert_eq!(server.wait(id), Some(JobStatus::Done));
    }
    server.shutdown();
    names
        .into_iter()
        .map(|name| {
            let dir = root.join("jobs").join(&name);
            let trace = std::fs::read_to_string(dir.join("trace.jsonl")).unwrap();
            let result = std::fs::read_to_string(dir.join("result.json")).unwrap();
            (name, (trace, result))
        })
        .collect()
}

#[test]
fn concurrent_jobs_match_sequential_jobs_byte_for_byte() {
    let sequential_root = temp_root("seq");
    let concurrent_root = temp_root("conc");
    let sequential = run_fleet(&sequential_root, 1, fleet());
    let concurrent = run_fleet(&concurrent_root, 4, fleet());
    assert_eq!(sequential.len(), 4);
    for (name, (trace, result)) in &sequential {
        let (ctrace, cresult) = &concurrent[name];
        assert!(!trace.is_empty(), "{name}: empty trace");
        assert_eq!(trace, ctrace, "{name}: workers=4 changed the trace");
        assert_eq!(result, cresult, "{name}: workers=4 changed the result");
    }
    let _ = std::fs::remove_dir_all(&sequential_root);
    let _ = std::fs::remove_dir_all(&concurrent_root);
}

/// Comparable view of a run (same shape as `parallel_determinism`).
fn digest(r: &DseResult) -> (u64, u64, Vec<(u64, u64)>) {
    (
        r.objective.to_bits(),
        r.sys_adg.fingerprint(),
        r.history
            .iter()
            .map(|(h, o)| (h.to_bits(), o.to_bits()))
            .collect(),
    )
}

#[test]
fn service_jobs_match_solo_dse_runs() {
    let root = temp_root("solo");
    let server = JobServer::start(ServiceConfig {
        root: root.clone(),
        workers: 2,
        store: true,
    })
    .unwrap();
    let id = server.submit(job("tenant", "fir", 33)).unwrap();
    assert_eq!(server.wait(id), Some(JobStatus::Done));
    let through_service = server.result(id).expect("done job has a result");
    server.shutdown();

    let solo = Dse::new(vec![workloads::by_name("fir").unwrap()], job_config(12, 33))
        .run()
        .unwrap();
    assert_eq!(digest(&through_service), digest(&solo));
    assert_eq!(through_service.stats, solo.stats);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn tenants_share_cache_entries_within_one_server() {
    let root = temp_root("share");
    let server = JobServer::start(ServiceConfig {
        root: root.clone(),
        workers: 1, // sequential, so the sharing below is guaranteed
        store: true,
    })
    .unwrap();
    let first = server.submit(job("first", "fir", 44)).unwrap();
    let second = server.submit(job("second", "fir", 44)).unwrap();
    assert_eq!(server.wait(first), Some(JobStatus::Done));
    assert_eq!(server.wait(second), Some(JobStatus::Done));
    let report = server.shutdown();
    let stats = report.store.expect("store enabled");
    assert_eq!(stats.hits + stats.misses, stats.lookups);
    assert!(
        stats.shared_serves > 0,
        "second tenant should be served from the first tenant's entries: {stats:?}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn warm_store_survives_restart_without_changing_artifacts() {
    let root = temp_root("warm");
    let cold = run_fleet(&root, 1, vec![job("tenant", "fir", 55)]);

    // Same root, fresh process-equivalent server: entries load from disk.
    let server = JobServer::start(ServiceConfig {
        root: root.clone(),
        workers: 1,
        store: true,
    })
    .unwrap();
    let warm_entries = server.store().unwrap().stats().warm_entries;
    assert!(warm_entries > 0, "first run should have persisted entries");
    let id = server.submit(job("tenant-warm", "fir", 55)).unwrap();
    assert_eq!(server.wait(id), Some(JobStatus::Done));
    let report = server.shutdown();
    let stats = report.store.expect("store enabled");
    assert!(stats.hits > 0, "warm run should hit the store: {stats:?}");
    assert_eq!(
        stats.misses, 0,
        "an identical domain should be fully warm: {stats:?}"
    );
    assert_eq!(stats.hits + stats.misses, stats.lookups);

    let warm_trace =
        std::fs::read_to_string(root.join("jobs").join("tenant-warm").join("trace.jsonl")).unwrap();
    // Job names differ but job traces carry the name only in the
    // service.job.* bracket events; normalize those and require identity.
    let (cold_trace, _) = &cold["tenant"];
    assert_eq!(
        cold_trace.replace("\"job\":\"tenant\"", "\"job\":\"tenant-warm\""),
        warm_trace,
        "a fully warm store changed the job trace"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn cancelling_a_queued_job_never_runs_it() {
    let root = temp_root("cancel-queued");
    let server = JobServer::start(ServiceConfig {
        root: root.clone(),
        workers: 1,
        store: false,
    })
    .unwrap();
    // A long job occupies the single worker while we cancel the other.
    let busy = server.submit(job("busy", "fir", 66)).unwrap();
    let victim = server
        .submit(JobRequest {
            name: "victim".to_string(),
            kernels: vec![workloads::by_name("fir").unwrap()],
            config: job_config(500, 67),
        })
        .unwrap();
    assert!(server.cancel(victim));
    assert_eq!(server.wait(victim), Some(JobStatus::Cancelled));
    assert_eq!(server.wait(busy), Some(JobStatus::Done));
    assert!(server.result(victim).is_none());
    assert!(
        !root
            .join("jobs")
            .join("victim")
            .join("trace.jsonl")
            .exists(),
        "cancelled-while-queued job must never start"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn cancelling_a_running_job_stops_it_gracefully() {
    let root = temp_root("cancel-running");
    let server = JobServer::start(ServiceConfig {
        root: root.clone(),
        workers: 1,
        store: false,
    })
    .unwrap();
    let id = server
        .submit(JobRequest {
            name: "long".to_string(),
            kernels: vec![workloads::by_name("fir").unwrap()],
            config: DseConfig {
                exchange_interval: 5, // frequent segment boundaries
                ..job_config(20_000, 68)
            },
        })
        .unwrap();
    while server.status(id) == Some(JobStatus::Queued) {
        std::thread::yield_now();
    }
    assert!(server.cancel(id));
    assert_eq!(server.wait(id), Some(JobStatus::Cancelled));
    let partial = server
        .result(id)
        .expect("graceful stop keeps the partial result");
    assert!(!partial.completed);
    assert!(partial.stats.iterations < 20_000);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Regression (PR 9): a running job cancelled through the `StopFlag`
/// must receive exactly the same terminal accounting as a queued-job
/// cancel — `wait()` unblocks with `Cancelled`, and the
/// `service.jobs.cancelled` counter reads exactly 1 (not 0, which would
/// mean the worker skipped the accounting; not 2, which would mean
/// `cancel` and the worker both accounted).
#[test]
fn running_job_cancel_accounts_terminally_exactly_once() {
    let root = temp_root("cancel-accounting");
    let server = JobServer::start(ServiceConfig {
        root: root.clone(),
        workers: 1,
        store: false,
    })
    .unwrap();
    let id = server
        .submit(JobRequest {
            name: "long".to_string(),
            kernels: vec![workloads::by_name("fir").unwrap()],
            config: DseConfig {
                exchange_interval: 5, // frequent segment boundaries
                ..job_config(20_000, 69)
            },
        })
        .unwrap();
    while server.status(id) == Some(JobStatus::Queued) {
        std::thread::yield_now();
    }
    assert!(server.cancel(id));
    assert_eq!(server.wait(id), Some(JobStatus::Cancelled));
    let reg = server.registry();
    assert_eq!(
        reg.counter_value("service.jobs.cancelled"),
        1,
        "a running-job cancel must be accounted exactly once"
    );
    assert_eq!(reg.counter_value("service.jobs.completed"), 0);
    assert_eq!(reg.counter_value("service.jobs.failed"), 0);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn submission_rejects_bad_and_duplicate_names() {
    let root = temp_root("names");
    let server = JobServer::start(ServiceConfig {
        root: root.clone(),
        workers: 1,
        store: false,
    })
    .unwrap();
    assert!(server.submit(job("", "fir", 1)).is_err());
    assert!(server.submit(job("../escape", "fir", 1)).is_err());
    let ok = server.submit(job("taken", "fir", 1)).unwrap();
    assert!(server.submit(job("taken", "fir", 2)).is_err());
    assert_eq!(server.wait(ok), Some(JobStatus::Done));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
