//! The spatial-placement contract (DESIGN.md §14), in two halves.
//!
//! **Default configs cannot see placement.** The placement stage runs only
//! under `Objective::PlacementAware`; a default-objective run must stay
//! byte-identical to the pre-placement goldens captured in
//! `objective_equivalence.rs` — same result digest, same trace digest, no
//! `dse.place` events, no placement metrics on any Pareto point.
//!
//! **Placement-aware runs inherit every determinism guarantee.** Same
//! results and byte-identical traces at any thread count, every tile
//! anchored to exactly one legal grid cell across the whole parameter
//! sweep, and NoC wirelength a function of the anchor multiset alone
//! (invariant under tile-id relabeling).

use overgen_adg::{mesh, MeshSpec, SysAdg, SystemParams};
use overgen_compiler::CompileOptions;
use overgen_dse::{Dse, DseConfig, DseResult, Objective, PlacementObjective};
use overgen_model::{noc_wirelength, ClockRegionGrid, Placer, Resources, SimpleGridPlacer};
use overgen_telemetry::Collector;
use overgen_workloads as workloads;

fn fnv1a64(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn fold_u64(h: u64, v: u64) -> u64 {
    fnv1a64(&v.to_le_bytes(), h)
}

/// Same digest as `objective_equivalence.rs`, so the golden constants
/// there are directly comparable here.
fn result_digest(r: &DseResult) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = fold_u64(h, r.objective.to_bits());
    h = fold_u64(h, r.sys_adg.fingerprint());
    h = fold_u64(h, r.history.len() as u64);
    for (t, o) in &r.history {
        h = fold_u64(h, t.to_bits());
        h = fold_u64(h, o.to_bits());
    }
    for (name, v) in &r.variants {
        h = fnv1a64(name.as_bytes(), h);
        h = fold_u64(h, u64::from(*v));
    }
    for v in [
        r.stats.iterations,
        r.stats.accepted,
        r.stats.invalid,
        r.stats.full_schedules,
        r.stats.repairs,
        r.stats.intact,
        r.stats.cache_hits,
        r.stats.cache_misses,
        r.stats.repair_fast,
        r.stats.repair_fallback,
    ] {
        h = fold_u64(h, v as u64);
    }
    h
}

fn trace_digest(trace: &str) -> u64 {
    fnv1a64(trace.as_bytes(), 0xcbf2_9ce4_8422_2325)
}

/// The golden run configuration from `objective_equivalence.rs`.
fn golden_cfg(threads: usize) -> DseConfig {
    DseConfig {
        iterations: 24,
        seed: 0xB0B5_CA7E,
        threads,
        chains: 2,
        exchange_interval: 8,
        compile: CompileOptions {
            max_unroll: 4,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn run(cfg: DseConfig) -> (DseResult, String) {
    let (collector, ring) = Collector::ring(1 << 18);
    let _install = overgen_telemetry::install(collector);
    let domain = vec![workloads::by_name("fir").unwrap()];
    let result = Dse::new(domain, cfg).run().unwrap();
    (result, ring.to_jsonl())
}

// The pre-placement goldens (captured in `objective_equivalence.rs` with
// `cache: true`, the default).
const GOLDEN_RESULT_CACHE: u64 = 0xec61d8114f3cb3ad;
const GOLDEN_TRACE_CACHE: u64 = 0xb61ade7abb564cdb;

#[test]
fn default_objective_runs_are_untouched_by_the_placement_stage() {
    let (r, trace) = run(golden_cfg(1));
    assert_eq!(
        result_digest(&r),
        GOLDEN_RESULT_CACHE,
        "adding the placement stage changed a default-objective result"
    );
    assert_eq!(
        trace_digest(&trace),
        GOLDEN_TRACE_CACHE,
        "adding the placement stage changed a default-objective trace"
    );
    assert!(
        !trace.contains("dse.place"),
        "default runs must emit no placement events"
    );
    assert!(
        r.pareto.points().iter().all(|p| p.placement.is_none()),
        "default runs must keep two-axis Pareto points"
    );
}

#[test]
fn placement_aware_runs_differ_and_fill_a_three_axis_frontier() {
    let (r, trace) = run(DseConfig {
        objective: Objective::PlacementAware(PlacementObjective::default()),
        ..golden_cfg(1)
    });
    assert_ne!(
        result_digest(&r),
        GOLDEN_RESULT_CACHE,
        "a placement-aware objective must actually change selection"
    );
    assert!(
        trace.contains("\"type\":\"dse.place\""),
        "placement evaluations must be visible in the trace"
    );
    assert!(!r.pareto.points().is_empty());
    assert!(
        r.pareto.points().iter().all(|p| p.placement.is_some()),
        "every placement-aware Pareto point must carry the third axis"
    );
}

#[test]
fn placement_aware_runs_are_deterministic_across_thread_counts() {
    let cfg = |threads| DseConfig {
        objective: Objective::PlacementAware(PlacementObjective::default()),
        ..golden_cfg(threads)
    };
    let (r1, t1) = run(cfg(1));
    let (r4, t4) = run(cfg(4));
    assert_eq!(
        result_digest(&r1),
        result_digest(&r4),
        "threads=4 changed a placement-aware result"
    );
    assert_eq!(
        trace_digest(&t1),
        trace_digest(&t4),
        "threads=4 changed a placement-aware trace"
    );
    assert_eq!(r1.pareto, r4.pareto, "frontier must be thread-independent");
}

fn sys_with_tiles(tiles: u32) -> SysAdg {
    SysAdg::new(
        mesh(&MeshSpec::default()),
        SystemParams {
            tiles,
            ..SystemParams::default()
        },
    )
}

#[test]
fn every_tile_gets_exactly_one_legal_cell_across_the_sweep() {
    let g = ClockRegionGrid::vcu118();
    for tiles in 1..=24u32 {
        for lut in [5_000.0, 60_000.0, 200_000.0, 500_000.0] {
            let tile = Resources {
                lut,
                ff: lut * 1.1,
                bram: lut / 2_000.0,
                dsp: lut / 5_000.0,
            };
            let r = SimpleGridPlacer.place(&sys_with_tiles(tiles), &tile, &g);
            assert_eq!(
                r.cells.len(),
                tiles as usize,
                "tiles={tiles} lut={lut}: one anchor per tile"
            );
            for c in &r.cells {
                assert!(
                    g.contains(*c),
                    "tiles={tiles} lut={lut}: anchor {c:?} off-grid"
                );
            }
            assert!(g.contains(r.hub));
            assert!(r.wirelength >= 0.0 && r.congestion > 0.0);
            assert!(r.fmax_mhz >= overgen_model::FMAX_FLOOR_MHZ);
        }
    }
}

#[test]
fn wirelength_is_invariant_under_tile_relabeling() {
    let g = ClockRegionGrid::vcu118();
    for tiles in [2u32, 5, 9, 16] {
        let tile = Resources {
            lut: 70_000.0,
            ff: 77_000.0,
            bram: 35.0,
            dsp: 14.0,
        };
        let r = SimpleGridPlacer.place(&sys_with_tiles(tiles), &tile, &g);
        let base = noc_wirelength(&r.cells, r.hub);
        // Walk every rotation and the full reversal: the total is a
        // function of the anchor multiset, never of which tile owns
        // which anchor.
        let mut relabeled = r.cells.clone();
        for _ in 0..relabeled.len() {
            relabeled.rotate_left(1);
            assert_eq!(noc_wirelength(&relabeled, r.hub), base, "tiles={tiles}");
        }
        relabeled.reverse();
        assert_eq!(noc_wirelength(&relabeled, r.hub), base, "tiles={tiles}");
    }
}
