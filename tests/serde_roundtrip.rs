// Gated: requires the `serde` feature AND restoring the serde/serde_json
// dependencies in the workspace manifests (removed for offline builds).
#![cfg(feature = "serde")]

//! Serialization round-trips: overlays and kernels are data a downstream
//! user will want to persist (the "sysADG + RTL" artifact of Figure 3).

use overgen_adg::{mesh, AdgSummary, MeshSpec, SysAdg, SystemParams};
use overgen_ir::Kernel;
use overgen_workloads as workloads;

#[test]
fn sys_adg_round_trips_through_json() {
    let sys = SysAdg::new(mesh(&MeshSpec::general()), SystemParams::default());
    let json = serde_json::to_string(&sys).expect("serializes");
    let back: SysAdg = serde_json::from_str(&json).expect("deserializes");
    // structural identity: same summary, same validation, same edges
    assert_eq!(AdgSummary::of(&sys.adg), AdgSummary::of(&back.adg));
    assert_eq!(sys.sys, back.sys);
    assert_eq!(
        sys.adg.edges().collect::<Vec<_>>(),
        back.adg.edges().collect::<Vec<_>>()
    );
    back.validate().expect("still valid");
}

#[test]
fn kernels_round_trip_through_json() {
    for k in workloads::all() {
        let json = serde_json::to_string(&k).expect("serializes");
        let back: Kernel = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(k, back, "{} changed across round trip", k.name());
        // traits derive identically from the round-tripped IR
        assert_eq!(k.traits(), back.traits());
    }
}

#[test]
fn mutated_adg_round_trips_with_stable_ids() {
    // Deleted slots must survive serialization so NodeIds stay stable.
    let mut sys = SysAdg::new(mesh(&MeshSpec::default()), SystemParams::default());
    let pe = sys.adg.nodes_of_kind(overgen_adg::NodeKind::Pe)[1];
    sys.adg.remove_node(pe);
    let survivor = sys.adg.nodes_of_kind(overgen_adg::NodeKind::Pe)[1];
    let json = serde_json::to_string(&sys).expect("serializes");
    let back: SysAdg = serde_json::from_str(&json).expect("deserializes");
    assert!(!back.adg.contains(pe));
    assert!(back.adg.contains(survivor));
    assert_eq!(back.adg.node_count(), sys.adg.node_count());
}
