//! The repair fast path's observability contract: `DseConfig::repair`
//! (env `OVERGEN_REPAIR` in the bench harness) switches eligible repairs
//! between the incremental fast path and a verified full placement — and
//! that switch must be *invisible*: bit-identical results, identical
//! counters, and byte-identical deterministic-clock JSONL traces.

use overgen_compiler::CompileOptions;
use overgen_dse::{Dse, DseConfig, DseResult};
use overgen_telemetry::Collector;
use overgen_workloads as workloads;

/// One traced DSE run over the fir workload with the given repair mode.
fn traced_dse(repair: bool, threads: usize, iterations: usize) -> (DseResult, String) {
    let (collector, ring) = Collector::ring(1 << 18);
    let _install = overgen_telemetry::install(collector);

    let cfg = DseConfig {
        iterations,
        seed: 0x4E0A_14D5, // deterministic; same for every run
        threads,
        repair,
        compile: CompileOptions {
            max_unroll: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let domain = vec![workloads::by_name("fir").unwrap()];
    let result = Dse::new(domain, cfg).run().unwrap();
    (result, ring.to_jsonl())
}

/// Comparable view of a run: objective bits, ADG fingerprint, annealing
/// history, and chosen variants.
type Digest = (u64, u64, Vec<(u64, u64)>, Vec<(String, u32)>);

/// Everything observable about a run, in comparable form.
fn digest(r: &DseResult) -> Digest {
    (
        r.objective.to_bits(),
        r.sys_adg.fingerprint(),
        r.history
            .iter()
            .map(|(h, o)| (h.to_bits(), o.to_bits()))
            .collect(),
        r.variants.iter().map(|(k, v)| (k.clone(), *v)).collect(),
    )
}

#[test]
fn repair_mode_does_not_change_results_or_traces() {
    let (on, trace_on) = traced_dse(true, 1, 25);
    let (off, trace_off) = traced_dse(false, 1, 25);
    assert_eq!(digest(&on), digest(&off), "repair mode changed the result");
    assert_eq!(on.schedules, off.schedules);
    assert_eq!(on.stats, off.stats, "repair mode changed the counters");
    assert_eq!(trace_on, trace_off, "repair mode changed the trace");
    assert!(!trace_on.is_empty());
    // The run must actually exercise the fast path, or this test proves
    // nothing.
    assert!(on.stats.repair_fast > 0, "no fast-path repairs ran");
}

#[test]
fn repair_mode_is_invisible_at_any_thread_count() {
    let (on, trace_on) = traced_dse(true, 4, 15);
    let (off, trace_off) = traced_dse(false, 4, 15);
    assert_eq!(digest(&on), digest(&off));
    assert_eq!(on.stats, off.stats);
    assert_eq!(trace_on, trace_off);
    // ... and against the serial runs of the other test's config shape.
    let (serial_on, serial_trace) = traced_dse(true, 1, 15);
    assert_eq!(digest(&on), digest(&serial_on));
    assert_eq!(trace_on, serial_trace);
}

#[test]
fn fast_path_carries_most_accepted_proposals() {
    // The ISSUE's acceptance bar: the incremental fast path must handle at
    // least half of all per-workload scheduling decisions in a preserving
    // DSE run.
    let (r, _) = traced_dse(true, 1, 60);
    let decisions = r.stats.repair_fast + r.stats.repair_fallback + r.stats.full_schedules;
    assert!(
        r.stats.repair_fast * 2 >= decisions,
        "fast path carried only {}/{} scheduling decisions",
        r.stats.repair_fast,
        decisions
    );
}
