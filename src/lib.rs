//! Workspace umbrella crate: hosts the integration tests under `tests/` and
//! the runnable examples under `examples/`. All functionality lives in the
//! `overgen-*` crates; see the [`overgen`] facade crate for the public API.
pub use overgen as api;
