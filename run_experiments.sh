#!/bin/sh
# Regenerates every paper table/figure into results/.
# Each binary publishes its own artifacts atomically (temp file + rename):
#   results/<name>.txt          rendered table (also printed below)
#   results/<name>.json         run manifest (seed, iters, wall time, metrics)
#   results/<name>.trace.jsonl  JSONL event trace, when OVERGEN_TRACE=1
# OVERGEN_DSE_ITERS scales DSE effort (EXPERIMENTS.md runs used 100).
# Summarize a trace with: $B/trace-summary results/<name>.trace.jsonl
set -x
B=./target/release
$B/table1_model_training
$B/table2_workloads
$B/table3_suite_overlays
$B/table4_hls_ii
$B/fig13_overall_performance
$B/fig14_kernel_tuning
$B/fig15_dse_time
$B/fig16_resource_breakdown
$B/fig17_leave_one_out
$B/fig18_incremental
$B/fig19_dram_channels
$B/fig20_schedule_preserving
$B/ablations
echo ALL_DONE
