#!/bin/sh
# Regenerates every paper table/figure into results/.
# OVERGEN_DSE_ITERS scales DSE effort (EXPERIMENTS.md runs used 100).
set -x
B=./target/release
$B/table1_model_training      > results/table1.txt 2>&1
$B/table2_workloads           > results/table2.txt 2>&1
$B/table3_suite_overlays      > results/table3.txt 2>&1
$B/table4_hls_ii              > results/table4.txt 2>&1
$B/fig13_overall_performance  > results/fig13.txt 2>&1
$B/fig14_kernel_tuning        > results/fig14.txt 2>&1
$B/fig15_dse_time             > results/fig15.txt 2>&1
$B/fig16_resource_breakdown   > results/fig16.txt 2>&1
$B/fig17_leave_one_out        > results/fig17.txt 2>&1
$B/fig18_incremental          > results/fig18.txt 2>&1
$B/fig19_dram_channels        > results/fig19.txt 2>&1
$B/fig20_schedule_preserving  > results/fig20.txt 2>&1
$B/ablations                  > results/ablations.txt 2>&1
echo ALL_DONE
